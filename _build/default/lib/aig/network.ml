type t = {
  mutable fanin0 : int array;  (* literal; -1 for PI; unused for const *)
  mutable fanin1 : int array;
  mutable num_nodes : int;
  pis : Vec.t;  (* node ids of primary inputs, in input order *)
  pos_ : Vec.t;  (* driver literals of primary outputs *)
  strash : (int, int) Hashtbl.t;  (* (f0,f1) key -> node id *)
  pi_pos : (int, int) Hashtbl.t;  (* PI node id -> input index *)
}

let strash_key f0 f1 = (f0 * 0x3f_ffff) + f1

let create ?(capacity = 64) () =
  let capacity = max 2 capacity in
  let g =
    {
      fanin0 = Array.make capacity (-2);
      fanin1 = Array.make capacity (-2);
      num_nodes = 1;
      pis = Vec.create ();
      pos_ = Vec.create ();
      strash = Hashtbl.create 251;
      pi_pos = Hashtbl.create 97;
    }
  in
  (* Node 0 is the constant node. *)
  g.fanin0.(0) <- -2;
  g.fanin1.(0) <- -2;
  g

let ensure_capacity g n =
  let cap = Array.length g.fanin0 in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let f0 = Array.make cap' (-2) and f1 = Array.make cap' (-2) in
    Array.blit g.fanin0 0 f0 0 g.num_nodes;
    Array.blit g.fanin1 0 f1 0 g.num_nodes;
    g.fanin0 <- f0;
    g.fanin1 <- f1
  end

let new_node g f0 f1 =
  ensure_capacity g (g.num_nodes + 1);
  let id = g.num_nodes in
  g.fanin0.(id) <- f0;
  g.fanin1.(id) <- f1;
  g.num_nodes <- id + 1;
  id

let add_pi g =
  let id = new_node g (-1) (-1) in
  Hashtbl.replace g.pi_pos id (Vec.length g.pis);
  Vec.push g.pis id;
  Lit.make id false

let add_and g a b =
  if Lit.node a >= g.num_nodes || Lit.node b >= g.num_nodes then
    invalid_arg "Network.add_and: fanin literal out of range";
  (* Normalise fanin order so that hashing is commutative. *)
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = Lit.const_false then Lit.const_false
  else if a = Lit.const_true then b
  else if a = b then a
  else if a = Lit.neg b then Lit.const_false
  else begin
    let key = strash_key a b in
    let rec find = function
      | [] -> None
      | id :: rest ->
          if g.fanin0.(id) = a && g.fanin1.(id) = b then Some id else find rest
    in
    match find (Hashtbl.find_all g.strash key) with
    | Some id -> Lit.make id false
    | None ->
        let id = new_node g a b in
        Hashtbl.add g.strash key id;
        Lit.make id false
  end

let add_and_raw g a b =
  let id = new_node g a b in
  Lit.make id false

let add_or g a b = Lit.neg (add_and g (Lit.neg a) (Lit.neg b))

let add_xor g a b =
  (* x xor y = !(x & y) & !(!x & !y) *)
  let both = add_and g a b in
  let neither = add_and g (Lit.neg a) (Lit.neg b) in
  add_and g (Lit.neg both) (Lit.neg neither)

let add_mux g sel t e =
  (* sel ? t : e *)
  let st = add_and g sel t in
  let se = add_and g (Lit.neg sel) e in
  add_or g st se

let add_po g l =
  if Lit.node l >= g.num_nodes then invalid_arg "Network.add_po: literal out of range";
  Vec.push g.pos_ l

let set_po g i l =
  if Lit.node l >= g.num_nodes then invalid_arg "Network.set_po: literal out of range";
  Vec.set g.pos_ i l

let num_nodes g = g.num_nodes
let num_pis g = Vec.length g.pis
let num_pos g = Vec.length g.pos_
let num_ands g = g.num_nodes - 1 - num_pis g
let pi g i = Vec.get g.pis i

let pi_index g n =
  match Hashtbl.find_opt g.pi_pos n with
  | Some i -> i
  | None -> invalid_arg "Network.pi_index: not a PI node"

let po g i = Vec.get g.pos_ i
let pos g = Vec.to_array g.pos_
let is_pi g n = n > 0 && n < g.num_nodes && g.fanin0.(n) = -1
let is_const n = n = 0
let is_and g n = n > 0 && n < g.num_nodes && g.fanin0.(n) >= 0

let fanin0 g n =
  if not (is_and g n) then invalid_arg "Network.fanin0: not an AND node";
  g.fanin0.(n)

let fanin1 g n =
  if not (is_and g n) then invalid_arg "Network.fanin1: not an AND node";
  g.fanin1.(n)

let iter_nodes g f =
  for n = 0 to g.num_nodes - 1 do
    f n
  done

let iter_ands g f =
  for n = 1 to g.num_nodes - 1 do
    if g.fanin0.(n) >= 0 then f n
  done

let fanout_counts g =
  let counts = Array.make g.num_nodes 0 in
  iter_ands g (fun n ->
      counts.(Lit.node g.fanin0.(n)) <- counts.(Lit.node g.fanin0.(n)) + 1;
      counts.(Lit.node g.fanin1.(n)) <- counts.(Lit.node g.fanin1.(n)) + 1);
  Vec.iter (fun l -> counts.(Lit.node l) <- counts.(Lit.node l) + 1) g.pos_;
  counts

let levels g =
  let lv = Array.make g.num_nodes 0 in
  iter_ands g (fun n ->
      lv.(n) <- 1 + max lv.(Lit.node g.fanin0.(n)) lv.(Lit.node g.fanin1.(n)));
  lv

let depth g =
  let lv = levels g in
  let d = ref 0 in
  Vec.iter (fun l -> d := max !d lv.(Lit.node l)) g.pos_;
  !d

let level_batches g =
  let lv = levels g in
  let maxl = Array.fold_left max 0 lv in
  let counts = Array.make (maxl + 1) 0 in
  iter_ands g (fun n -> counts.(lv.(n)) <- counts.(lv.(n)) + 1);
  let batches = Array.init (maxl + 1) (fun l -> Array.make counts.(l) 0) in
  let fill = Array.make (maxl + 1) 0 in
  iter_ands g (fun n ->
      let l = lv.(n) in
      batches.(l).(fill.(l)) <- n;
      fill.(l) <- fill.(l) + 1);
  batches

let copy g =
  {
    fanin0 = Array.copy g.fanin0;
    fanin1 = Array.copy g.fanin1;
    num_nodes = g.num_nodes;
    pis = Vec.of_array (Vec.to_array g.pis);
    pos_ = Vec.of_array (Vec.to_array g.pos_);
    strash = Hashtbl.copy g.strash;
    pi_pos = Hashtbl.copy g.pi_pos;
  }

let check g =
  let ok = ref (Ok ()) in
  let fail msg = if !ok = Ok () then ok := Error msg in
  iter_ands g (fun n ->
      let f0 = g.fanin0.(n) and f1 = g.fanin1.(n) in
      if Lit.node f0 >= n || Lit.node f1 >= n then
        fail (Printf.sprintf "node %d has non-topological fanin" n);
      if Lit.node f0 < 0 || Lit.node f1 < 0 then
        fail (Printf.sprintf "node %d has invalid fanin" n));
  Vec.iter
    (fun l ->
      if Lit.node l >= g.num_nodes then fail "PO driver out of range")
    g.pos_;
  !ok
