type t = int

let const_false = 0
let const_true = 1
let make id compl_ = (id lsl 1) lor Bool.to_int compl_
let node l = l lsr 1
let is_compl l = l land 1 = 1
let neg l = l lxor 1
let xor_compl l b = if b then l lxor 1 else l
let abs l = l land lnot 1

let pp fmt l =
  Format.fprintf fmt "%s%d" (if is_compl l then "!" else "") (node l)
