type window = { inputs : int array; nodes : int array }

let extract g ~roots ~inputs =
  let input_set = Hashtbl.create (Array.length inputs * 2) in
  Array.iter (fun n -> Hashtbl.replace input_set n ()) inputs;
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let ok = ref true in
  let rec dfs n =
    if !ok && not (Hashtbl.mem seen n) && not (Hashtbl.mem input_set n) then begin
      Hashtbl.add seen n ();
      if Network.is_and g n then begin
        dfs (Lit.node (Network.fanin0 g n));
        dfs (Lit.node (Network.fanin1 g n));
        acc := n :: !acc
      end
      else
        (* PI or constant outside the boundary: the cut is not valid. *)
        ok := false
    end
  in
  Array.iter dfs roots;
  if not !ok then None
  else begin
    let nodes = Array.of_list !acc in
    Array.sort compare nodes;
    let inputs = Array.copy inputs in
    Array.sort compare inputs;
    Some { inputs; nodes }
  end

let tfi g ~roots =
  (* Iterative DFS: whole-network cones can be deeper than the stack. *)
  let mem = Array.make (Network.num_nodes g) false in
  let stack = ref [] in
  let push n =
    if not mem.(n) then begin
      mem.(n) <- true;
      stack := n :: !stack
    end
  in
  Array.iter push roots;
  let rec drain () =
    match !stack with
    | [] -> ()
    | n :: rest ->
        stack := rest;
        if Network.is_and g n then begin
          push (Lit.node (Network.fanin0 g n));
          push (Lit.node (Network.fanin1 g n))
        end;
        drain ()
  in
  drain ();
  mem
