lib/par/pool.ml: Array Atomic Condition Domain List Mutex Sys Unix
