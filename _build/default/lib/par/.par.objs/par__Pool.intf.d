lib/par/pool.mli:
