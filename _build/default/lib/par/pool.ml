type job = {
  body : int -> unit;
  cursor : int Atomic.t;
  stop : int;
  chunk : int;
  pending : int Atomic.t;  (* spawned workers that have not finished yet *)
  exn : exn option Atomic.t;
}

type t = {
  spawned : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable stopping : bool;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  mutable domains : unit Domain.t list;
  in_loop : bool ref;  (* guards against nested parallel_for on this domain *)
}

let run_chunks job =
  let rec loop () =
    if Atomic.get job.exn <> None then ()
    else begin
      let i = Atomic.fetch_and_add job.cursor job.chunk in
      if i < job.stop then begin
        let hi = min job.stop (i + job.chunk) in
        (try
           for k = i to hi - 1 do
             job.body k
           done
         with e -> ignore (Atomic.compare_and_set job.exn None (Some e)));
        loop ()
      end
    end
  in
  loop ()

let worker_loop t =
  let seen = ref 0 in
  let rec go () =
    Mutex.lock t.mutex;
    while t.generation = !seen && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = t.current in
      Mutex.unlock t.mutex;
      (match job with
      | None -> ()
      | Some job ->
          run_chunks job;
          if Atomic.fetch_and_add job.pending (-1) = 1 then begin
            Mutex.lock t.done_mutex;
            Condition.broadcast t.done_cond;
            Mutex.unlock t.done_mutex
          end);
      go ()
    end
  in
  go ()

let env_domains () =
  match Sys.getenv_opt "SIMSWEEP_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  | None -> None

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Pool.create: num_domains must be >= 1"
    | None -> (
        match env_domains () with
        | Some n -> n
        | None -> min 8 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      spawned = n - 1;
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      domains = [];
      in_loop = ref false;
    }
  in
  t.domains <- List.init t.spawned (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let num_workers t = t.spawned + 1

let parallel_for t ?chunk ~start ~stop body =
  let n = stop - start in
  if n <= 0 then ()
  else if t.spawned = 0 || !(t.in_loop) || n <= 1 then
    for i = start to stop - 1 do
      body i
    done
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (8 * (t.spawned + 1)))
    in
    let job =
      {
        body;
        cursor = Atomic.make start;
        stop;
        chunk;
        pending = Atomic.make t.spawned;
        exn = Atomic.make None;
      }
    in
    Mutex.lock t.mutex;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    t.in_loop := true;
    run_chunks job;
    t.in_loop := false;
    Mutex.lock t.done_mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait t.done_cond t.done_mutex
    done;
    Mutex.unlock t.done_mutex;
    match Atomic.get job.exn with None -> () | Some e -> raise e
  end

let parallel_reduce t ~start ~stop ~neutral ~body ~combine =
  let n = stop - start in
  if n <= 0 then neutral
  else begin
    let nslots = t.spawned + 1 in
    let slots = Array.make nslots neutral in
    let slot_cursor = Atomic.make 0 in
    let key = Domain.DLS.new_key (fun () -> -1) in
    parallel_for t ~start ~stop (fun i ->
        let s =
          let s = Domain.DLS.get key in
          if s >= 0 then s
          else begin
            let s = Atomic.fetch_and_add slot_cursor 1 in
            Domain.DLS.set key s;
            s
          end
        in
        slots.(s) <- combine slots.(s) (body i));
    Array.fold_left combine neutral slots
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      p
