type job = {
  body : int -> unit;
  cursor : int Atomic.t;
  stop : int;
  chunk : int;
  pending : int Atomic.t;  (* spawned workers that have not finished yet *)
  exn : exn option Atomic.t;
}

type stats = {
  mutable jobs : int;
  mutable seq_jobs : int;
  mutable items : int;
  mutable barrier_wait : float;
  chunks_per_worker : int array;
}

type t = {
  spawned : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable current : job option;
  mutable generation : int;
  mutable stopping : bool;
  done_mutex : Mutex.t;
  done_cond : Condition.t;
  mutable domains : unit Domain.t list;
  in_loop : bool ref;  (* guards against nested parallel_for on this domain *)
  stat : stats;
}

(* Each worker owns one slot of [chunks_per_worker] (slot 0 is the calling
   domain), so plain increments are race-free. *)
let run_chunks t slot job =
  let claims = t.stat.chunks_per_worker in
  let rec loop () =
    if Atomic.get job.exn <> None then ()
    else begin
      let i = Atomic.fetch_and_add job.cursor job.chunk in
      if i < job.stop then begin
        claims.(slot) <- claims.(slot) + 1;
        let hi = min job.stop (i + job.chunk) in
        (try
           for k = i to hi - 1 do
             job.body k
           done
         with e -> ignore (Atomic.compare_and_set job.exn None (Some e)));
        loop ()
      end
    end
  in
  loop ()

let worker_loop t slot =
  let seen = ref 0 in
  let rec go () =
    Mutex.lock t.mutex;
    while t.generation = !seen && not t.stopping do
      Condition.wait t.cond t.mutex
    done;
    if t.stopping then Mutex.unlock t.mutex
    else begin
      seen := t.generation;
      let job = t.current in
      Mutex.unlock t.mutex;
      (match job with
      | None -> ()
      | Some job ->
          run_chunks t slot job;
          if Atomic.fetch_and_add job.pending (-1) = 1 then begin
            Mutex.lock t.done_mutex;
            Condition.broadcast t.done_cond;
            Mutex.unlock t.done_mutex
          end);
      go ()
    end
  in
  go ()

let env_domains () =
  match Sys.getenv_opt "SIMSWEEP_DOMAINS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None)
  | None -> None

let create ?num_domains () =
  let n =
    match num_domains with
    | Some n when n >= 1 -> n
    | Some _ -> invalid_arg "Pool.create: num_domains must be >= 1"
    | None -> (
        match env_domains () with
        | Some n -> n
        | None -> min 8 (Domain.recommended_domain_count ()))
  in
  let t =
    {
      spawned = n - 1;
      mutex = Mutex.create ();
      cond = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      done_mutex = Mutex.create ();
      done_cond = Condition.create ();
      domains = [];
      in_loop = ref false;
      stat =
        {
          jobs = 0;
          seq_jobs = 0;
          items = 0;
          barrier_wait = 0.;
          chunks_per_worker = Array.make n 0;
        };
    }
  in
  t.domains <-
    List.init t.spawned (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let num_workers t = t.spawned + 1

let stats t = { t.stat with chunks_per_worker = Array.copy t.stat.chunks_per_worker }

let reset_stats t =
  t.stat.jobs <- 0;
  t.stat.seq_jobs <- 0;
  t.stat.items <- 0;
  t.stat.barrier_wait <- 0.;
  Array.fill t.stat.chunks_per_worker 0 (Array.length t.stat.chunks_per_worker) 0

let parallel_for t ?chunk ~start ~stop body =
  let n = stop - start in
  if n <= 0 then ()
  else if t.spawned = 0 || !(t.in_loop) || n <= 1 then begin
    t.stat.seq_jobs <- t.stat.seq_jobs + 1;
    t.stat.items <- t.stat.items + n;
    for i = start to stop - 1 do
      body i
    done
  end
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (8 * (t.spawned + 1)))
    in
    let job =
      {
        body;
        cursor = Atomic.make start;
        stop;
        chunk;
        pending = Atomic.make t.spawned;
        exn = Atomic.make None;
      }
    in
    t.stat.jobs <- t.stat.jobs + 1;
    t.stat.items <- t.stat.items + n;
    Mutex.lock t.mutex;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    t.in_loop := true;
    run_chunks t 0 job;
    t.in_loop := false;
    let wait0 = Unix.gettimeofday () in
    Mutex.lock t.done_mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait t.done_cond t.done_mutex
    done;
    Mutex.unlock t.done_mutex;
    t.stat.barrier_wait <- t.stat.barrier_wait +. (Unix.gettimeofday () -. wait0);
    match Atomic.get job.exn with None -> () | Some e -> raise e
  end

let parallel_reduce ?chunk t ~start ~stop ~neutral ~body ~combine =
  let n = stop - start in
  if n <= 0 then neutral
  else begin
    (* Deterministic: chunk boundaries depend only on [n] and [chunk], each
       chunk folds its indices left-to-right, and the chunk partials are
       folded in chunk order — so any associative [combine] gives the same
       result as a sequential left fold, run after run. *)
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | _ -> max 1 (n / (8 * (t.spawned + 1)))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let partial = Array.make nchunks neutral in
    parallel_for t ~chunk:1 ~start:0 ~stop:nchunks (fun c ->
        let lo = start + (c * chunk) in
        let hi = min stop (lo + chunk) in
        let acc = ref neutral in
        for i = lo to hi - 1 do
          acc := combine !acc (body i)
        done;
        partial.(c) <- !acc);
    Array.fold_left combine neutral partial
  end

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let default_pool = ref None

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      (* The default pool's domains are never joined by callers; tear them
         down at process exit so runs under test runners exit cleanly. *)
      at_exit (fun () -> shutdown p);
      p
