(** Fork–join domain pool.

    This is the stand-in for the paper's GPU runtime: data-parallel loops
    with a barrier at the end, used for all three dimensions of parallelism
    of the exhaustive simulator (words of a truth table, nodes of a
    topological level, windows of a batch).  Workers self-schedule fixed
    chunks off an atomic cursor, which matches the GPU grid-stride idiom. *)

type t

(** Utilization counters, accumulated since pool creation (or the last
    {!reset_stats}).  [chunks_per_worker.(0)] counts chunks claimed by the
    calling domain, slots [1..] the spawned workers — their spread shows
    how evenly the self-scheduling balanced the load. *)
type stats = {
  mutable jobs : int;  (** parallel loops dispatched to the workers *)
  mutable seq_jobs : int;  (** loops run inline (tiny range or nested) *)
  mutable items : int;  (** loop indices executed, over all loops *)
  mutable barrier_wait : float;
      (** seconds the calling domain spent waiting at end-of-loop barriers *)
  chunks_per_worker : int array;
}

(** [create ~num_domains ()] spawns [num_domains - 1] worker domains; the
    calling domain participates in every loop, so [num_domains = 1] gives a
    purely sequential pool.  Defaults to [recommended_domain_count],
    overridable with the [SIMSWEEP_DOMAINS] environment variable. *)
val create : ?num_domains:int -> unit -> t

(** Total workers, including the calling domain. *)
val num_workers : t -> int

(** Snapshot of the pool's utilization counters. *)
val stats : t -> stats

val reset_stats : t -> unit

(** [parallel_for t ~chunk ~start ~stop body] runs [body i] for
    [start <= i < stop] across the pool and returns once every index is
    done.  Exceptions raised by [body] are re-raised (first one wins) after
    the barrier.  Nested calls from inside [body] run sequentially. *)
val parallel_for : t -> ?chunk:int -> start:int -> stop:int -> (int -> unit) -> unit

(** [parallel_reduce t ~start ~stop ~neutral ~body ~combine] folds the
    values of [body i] with [combine].  [combine] must be associative and
    [neutral] its unit; commutativity is {e not} required — indices are
    folded left-to-right within fixed chunks and the chunk partials are
    combined in index order, so the result is deterministic and equal to
    the sequential left fold for any associative [combine]. *)
val parallel_reduce :
  ?chunk:int ->
  t ->
  start:int ->
  stop:int ->
  neutral:'a ->
  body:(int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a

(** Terminate the worker domains.  Idempotent; the pool must not be used
    for further loops afterwards. *)
val shutdown : t -> unit

(** Lazily-created process-wide pool; its workers are shut down
    automatically at process exit. *)
val default : unit -> t
