(** Fork–join domain pool.

    This is the stand-in for the paper's GPU runtime: data-parallel loops
    with a barrier at the end, used for all three dimensions of parallelism
    of the exhaustive simulator (words of a truth table, nodes of a
    topological level, windows of a batch).  Workers self-schedule fixed
    chunks off an atomic cursor, which matches the GPU grid-stride idiom. *)

type t

(** [create ~num_domains ()] spawns [num_domains - 1] worker domains; the
    calling domain participates in every loop, so [num_domains = 1] gives a
    purely sequential pool.  Defaults to [recommended_domain_count],
    overridable with the [SIMSWEEP_DOMAINS] environment variable. *)
val create : ?num_domains:int -> unit -> t

(** Total workers, including the calling domain. *)
val num_workers : t -> int

(** [parallel_for t ~chunk ~start ~stop body] runs [body i] for
    [start <= i < stop] across the pool and returns once every index is
    done.  Exceptions raised by [body] are re-raised (first one wins) after
    the barrier.  Nested calls from inside [body] run sequentially. *)
val parallel_for : t -> ?chunk:int -> start:int -> stop:int -> (int -> unit) -> unit

(** [parallel_reduce t ~start ~stop ~neutral ~body ~combine] folds the
    values of [body i] with [combine]; [combine] must be associative and
    [neutral] its unit. *)
val parallel_reduce :
  t -> start:int -> stop:int -> neutral:'a -> body:(int -> 'a) -> combine:('a -> 'a -> 'a) -> 'a

(** Terminate the worker domains.  The pool must not be used afterwards. *)
val shutdown : t -> unit

(** Lazily-created process-wide pool. *)
val default : unit -> t
