(* Cross-architecture datapath verification.

   Verifying two genuinely different implementations — an array multiplier
   against a Wallace-tree multiplier — is the hard version of CEC: the two
   circuits share almost no internal structure, so internal equivalences
   are scarce and the checker has to earn the proof.  The example also
   shows output partitioning on a multi-unit design (two independent ALUs
   checked as separate groups).

       dune exec examples/cross_architecture.exe *)

let () =
  let pool = Par.Pool.create () in

  (* 1. Array vs Wallace multiplier. *)
  let bits = 7 in
  let array_mult = Gen.Arith.multiplier ~bits in
  let wallace = Gen.Wallace.multiplier ~bits in
  Printf.printf "array:   %s\nwallace: %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network array_mult))
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network wallace));
  let miter = Aig.Miter.build array_mult wallace in
  let t0 = Unix.gettimeofday () in
  let c = Simsweep.Engine.check_with_fallback ~pool miter in
  Printf.printf "array vs wallace: %s in %.3fs (engine reduced %.1f%%, SAT %s)\n\n"
    (match c.Simsweep.Engine.final with
    | Simsweep.Engine.Proved -> "EQUIVALENT"
    | Simsweep.Engine.Disproved _ -> "NOT EQUIVALENT"
    | Simsweep.Engine.Undecided -> "UNDECIDED")
    (Unix.gettimeofday () -. t0)
    (Simsweep.Engine.reduction_percent c.Simsweep.Engine.engine)
    (if c.Simsweep.Engine.sat_outcome = None then "not needed" else "finished the rest");

  (* 2. Output partitioning on a two-unit design. *)
  let dual_alu = Gen.Double.double (Gen.Alu.alu ~bits:6) in
  let optimized = Opt.Resyn.light dual_alu in
  let miter = Aig.Miter.build dual_alu optimized in
  let groups = Simsweep.Partition.groups miter in
  Printf.printf "dual ALU miter: %d outputs in %d support groups\n"
    (Aig.Network.num_pos miter) (List.length groups);
  let t0 = Unix.gettimeofday () in
  let outcome, ngroups = Simsweep.Partition.check ~pool miter in
  Printf.printf "partitioned check: %s across %d groups in %.3fs\n"
    (match outcome with
    | Simsweep.Engine.Proved -> "EQUIVALENT"
    | Simsweep.Engine.Disproved _ -> "NOT EQUIVALENT"
    | Simsweep.Engine.Undecided -> "UNDECIDED")
    ngroups
    (Unix.gettimeofday () -. t0);
  Par.Pool.shutdown pool
