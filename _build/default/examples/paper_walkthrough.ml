(* A guided tour of the paper's machinery on a tiny example (its Fig. 2
   flavour): two structurally different implementations of fg + h, proved
   equivalent through a common cut, with the satisfiability-don't-care
   subtlety of local function checking made visible.

       dune exec examples/paper_walkthrough.exe *)

let () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g
  and b = Aig.Network.add_pi g
  and c = Aig.Network.add_pi g
  and d = Aig.Network.add_pi g
  and e = Aig.Network.add_pi g in
  (* The shared lower structure: f = ab, gg = c, h = d & !e. *)
  let f = Aig.Network.add_and g a b in
  let gg = Aig.Network.add_and g c c in
  (* gg strashes to c itself; keep the cut node distinct by using cd *)
  ignore gg;
  let gg = Aig.Network.add_and g c d in
  let h = Aig.Network.add_and g d (Aig.Lit.neg e) in
  (* n = (f & gg) | h;  m = (f | h) & (gg | h) — distributivity makes them
     the same function with different structure. *)
  let n = Aig.Network.add_or g (Aig.Network.add_and g f gg) h in
  let m = Aig.Network.add_and g (Aig.Network.add_or g f h) (Aig.Network.add_or g gg h) in
  Aig.Network.add_po g n;
  Aig.Network.add_po g m;
  Printf.printf "network: %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network g));
  Printf.printf "n is node %d, m is node %d (different nodes: %b)\n\n"
    (Aig.Lit.node n) (Aig.Lit.node m)
    (Aig.Lit.node n <> Aig.Lit.node m);

  let pool = Par.Pool.create () in

  (* 1. Global function checking: exhaustive simulation over all 5 PIs. *)
  let pis = Array.init 5 (fun i -> Aig.Network.pi g i) in
  let job pairs inputs = { Simsweep.Exhaustive.inputs; pairs } in
  let pair tag inputs =
    job [ { Simsweep.Exhaustive.a = Aig.Lit.node n; b = Aig.Lit.node m;
            compl_ = Aig.Lit.is_compl n <> Aig.Lit.is_compl m; tag } ] inputs
  in
  let verdicts =
    Simsweep.Exhaustive.run g ~pool ~memory_words:4096
      ~jobs:[ pair 0 pis ] ~num_tags:1 ()
  in
  Printf.printf "global check over {a,b,c,d,e} (2^5 patterns): %s\n"
    (match verdicts.(0) with
    | Simsweep.Exhaustive.Proved -> "PROVED"
    | Simsweep.Exhaustive.Mismatch _ -> "mismatch"
    | Simsweep.Exhaustive.Invalid -> "invalid");

  (* 2. Local function checking over the common cut {f, gg, h}: 2^3
        patterns instead of 2^5 — the paper's Fig. 2 reduction. *)
  let cut = [| Aig.Lit.node f; Aig.Lit.node gg; Aig.Lit.node h |] in
  Array.sort compare cut;
  let verdicts =
    Simsweep.Exhaustive.run g ~pool ~memory_words:4096 ~jobs:[ pair 0 cut ]
      ~num_tags:1 ()
  in
  Printf.printf "local check over cut {f,g,h} (2^3 patterns):   %s\n"
    (match verdicts.(0) with
    | Simsweep.Exhaustive.Proved -> "PROVED"
    | Simsweep.Exhaustive.Mismatch _ -> "mismatch"
    | Simsweep.Exhaustive.Invalid -> "invalid");

  (* 3. The SDC subtlety: compare n against a node that agrees with it on
        every *reachable* cut pattern but disagrees on an unreachable one.
        q = (f & gg) | (h & !(f & gg & h-conflict))… simplest concrete
        case: compare h-conditioned functions over the cut {gg, h} of the
        node p = gg & h.  The cut {d, h} of p has the SDC (d=0, h=1) —
        h = d & !e can never be 1 while d is 0 — so functions differing
        only there are still equivalent. *)
  let p = Aig.Network.add_and g gg h in
  let q = Aig.Network.add_and g (Aig.Network.add_and g c d) h in
  (* p = (cd) & h and q = (cd) & h share structure after strashing; build
     a variant that relies on the SDC: q' = gg & h & d — redundant since
     h implies d, i.e. equal to p only because (d=0, h=1) is an SDC. *)
  let q' = Aig.Network.add_and g p d in
  ignore q;
  Printf.printf "\nSDC demonstration: p = g&h, q' = g&h&d (h implies d):\n";
  let pair2 inputs tag x y =
    {
      Simsweep.Exhaustive.inputs;
      pairs = [ { Simsweep.Exhaustive.a = Aig.Lit.node x; b = Aig.Lit.node y; compl_ = false; tag } ];
    }
  in
  let over_cut = pair2 [| Aig.Lit.node d; Aig.Lit.node gg; Aig.Lit.node h |] 0 p q' in
  let over_global = pair2 pis 1 p q' in
  let verdicts =
    Simsweep.Exhaustive.run g ~pool ~memory_words:4096
      ~jobs:[ over_cut; over_global ] ~num_tags:2 ()
  in
  Printf.printf "  over the cut {d,g,h}: %s  (differs only at the SDC d=0,h=1)\n"
    (match verdicts.(0) with
    | Simsweep.Exhaustive.Proved -> "proved"
    | Simsweep.Exhaustive.Mismatch _ -> "MISMATCH -> inconclusive, not a disproof"
    | Simsweep.Exhaustive.Invalid -> "invalid");
  Printf.printf "  over the PIs:         %s  (the pair really is equivalent)\n"
    (match verdicts.(1) with
    | Simsweep.Exhaustive.Proved -> "PROVED"
    | Simsweep.Exhaustive.Mismatch _ -> "mismatch"
    | Simsweep.Exhaustive.Invalid -> "invalid");
  Par.Pool.shutdown pool
