(* Logic-synthesis verification: the motivating workload of the paper.

   An array multiplier is optimised by the resyn2 stand-in; the checker
   proves the optimised netlist equivalent.  Then a subtle bug is injected
   into the "optimised" circuit and the checker produces a concrete
   counter-example, which we decode back to integer operands.

       dune exec examples/arithmetic_verification.exe *)

let bits = 7

let decode cex lo len =
  let v = ref 0 in
  for i = 0 to len - 1 do
    if cex.(lo + i) then v := !v lor (1 lsl i)
  done;
  !v

let () =
  let pool = Par.Pool.create () in
  let golden = Gen.Arith.multiplier ~bits in
  Printf.printf "golden multiplier:    %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network golden));
  let optimized = Opt.Resyn.resyn2 golden in
  Printf.printf "after resyn2:         %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network optimized));

  (* 1. Verify the synthesis result. *)
  let miter = Aig.Miter.build golden optimized in
  let t0 = Unix.gettimeofday () in
  let r = Simsweep.Engine.run ~pool miter in
  Printf.printf "verification: %s in %.3fs (reduced %.1f%%)\n"
    (match r.Simsweep.Engine.outcome with
    | Simsweep.Engine.Proved -> "EQUIVALENT"
    | Simsweep.Engine.Disproved _ -> "NOT EQUIVALENT"
    | Simsweep.Engine.Undecided -> "UNDECIDED")
    (Unix.gettimeofday () -. t0)
    (Simsweep.Engine.reduction_percent r);
  Printf.printf "phase breakdown: %s\n"
    (Format.asprintf "%a" Simsweep.Stats.pp r.Simsweep.Engine.stats);

  (* 2. Inject a bug: drop a carry in one output column. *)
  let buggy = Aig.Network.copy optimized in
  Aig.Network.set_po buggy (bits + 1) (Aig.Lit.neg (Aig.Network.po buggy (bits + 1)));
  let bad_miter = Aig.Miter.build golden buggy in
  (match (Simsweep.Engine.run ~pool bad_miter).Simsweep.Engine.outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      let a = decode cex 0 bits and b = decode cex bits bits in
      Printf.printf
        "bug found: output bit %d wrong for %d * %d (= %d); checker CEX is a \
         real witness: %b\n"
        po a b (a * b)
        (Sim.Cex.check bad_miter cex po)
  | _ -> print_endline "bug NOT found (unexpected)");
  Par.Pool.shutdown pool
