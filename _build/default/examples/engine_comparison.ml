(* Engine comparison across circuit families — a miniature of the paper's
   Table II observation: the simulation engine shines on wide arithmetic
   (multiplier, square), the BDD engine on symmetric control (voter), and
   SAT sweeping holds its own on deep irregular logic (sqrt).

       dune exec examples/engine_comparison.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let pool = Par.Pool.create () in
  let cases =
    [
      ("multiplier", Gen.Arith.multiplier ~bits:7);
      ("square", Gen.Arith.square ~bits:8);
      ("voter", Gen.Control.voter ~n:21);
      ("sqrt", Gen.Arith.sqrt ~bits:12);
    ]
  in
  Printf.printf "%-12s %8s %10s %10s %10s\n" "case" "ands" "sim(s)" "sat(s)" "bdd(s)";
  List.iter
    (fun (name, g) ->
      let miter = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
      let sim_result, sim_t =
        time (fun () ->
            (Simsweep.Engine.check_with_fallback ~pool miter).Simsweep.Engine.final)
      in
      let sat_result, sat_t =
        time (fun () -> fst (Sat.Sweep.check ~pool miter))
      in
      let bdd_result, bdd_t = time (fun () -> Bdd.check ~node_limit:500_000 miter) in
      let show_sim = function
        | Simsweep.Engine.Proved -> ""
        | _ -> "!"
      in
      let show_sat = function Sat.Sweep.Equivalent -> "" | _ -> "!" in
      let show_bdd = function `Equivalent -> "" | `Node_limit -> " limit" | _ -> "!" in
      Printf.printf "%-12s %8d %9.3f%s %9.3f%s %9.3f%s\n" name
        (Aig.Network.num_ands miter) sim_t (show_sim sim_result) sat_t
        (show_sat sat_result) bdd_t (show_bdd bdd_result))
    cases;
  Par.Pool.shutdown pool
