(* Quickstart: build two implementations of the same function with the AIG
   API and prove them equivalent with the simulation-based engine.

       dune exec examples/quickstart.exe *)

let () =
  (* Implementation 1: full adder from two half-adders. *)
  let g1 = Aig.Network.create () in
  let a = Aig.Network.add_pi g1
  and b = Aig.Network.add_pi g1
  and cin = Aig.Network.add_pi g1 in
  let s1 = Aig.Network.add_xor g1 a b in
  let sum = Aig.Network.add_xor g1 s1 cin in
  let carry =
    Aig.Network.add_or g1 (Aig.Network.add_and g1 a b) (Aig.Network.add_and g1 s1 cin)
  in
  Aig.Network.add_po g1 sum;
  Aig.Network.add_po g1 carry;

  (* Implementation 2: sum-of-products forms of the same outputs. *)
  let g2 = Aig.Network.create () in
  let a = Aig.Network.add_pi g2
  and b = Aig.Network.add_pi g2
  and cin = Aig.Network.add_pi g2 in
  let minterm x y z =
    Aig.Network.add_and g2 (Aig.Network.add_and g2 x y) z
  in
  let n l = Aig.Lit.neg l in
  let sum =
    List.fold_left (Aig.Network.add_or g2) Aig.Lit.const_false
      [
        minterm a (n b) (n cin); minterm (n a) b (n cin);
        minterm (n a) (n b) cin; minterm a b cin;
      ]
  in
  let carry =
    List.fold_left (Aig.Network.add_or g2) Aig.Lit.const_false
      [ minterm a b (n cin); minterm a (n b) cin; minterm (n a) b cin; minterm a b cin ]
  in
  Aig.Network.add_po g2 sum;
  Aig.Network.add_po g2 carry;

  (* Build the miter and run the checker. *)
  let miter = Aig.Miter.build g1 g2 in
  Printf.printf "miter: %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network miter));
  let pool = Par.Pool.create () in
  let result = Simsweep.Engine.run ~pool miter in
  (match result.Simsweep.Engine.outcome with
  | Simsweep.Engine.Proved -> print_endline "the two adders are EQUIVALENT"
  | Simsweep.Engine.Disproved (cex, po) ->
      Printf.printf "NOT equivalent: output %d differs under " po;
      Array.iter (fun v -> print_char (if v then '1' else '0')) cex;
      print_newline ()
  | Simsweep.Engine.Undecided -> print_endline "undecided (unexpected here)");
  Par.Pool.shutdown pool
