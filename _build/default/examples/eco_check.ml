(* Functional ECO verification (paper intro, application [4]).

   A register-file control block gets an engineering change order: the
   write-enable must now be gated with a new "lock" input.  We build the
   patched netlist, show that CEC correctly reports where old and new
   behaviour agree (lock = 0) and differ (lock = 1), by checking the patched
   design against a reference implementation of the intended behaviour.

       dune exec examples/eco_check.exe *)

let regs = 4
let width = 4

(* The intended post-ECO behaviour, written from scratch. *)
let reference () =
  let g = Aig.Network.create () in
  let abits = 2 in
  let waddr = Array.init abits (fun _ -> Aig.Network.add_pi g) in
  let raddr = Array.init abits (fun _ -> Aig.Network.add_pi g) in
  let wdata = Array.init width (fun _ -> Aig.Network.add_pi g) in
  let wen = Aig.Network.add_pi g in
  let lock = Aig.Network.add_pi g in
  let state = Array.init regs (fun _ -> Array.init width (fun _ -> Aig.Network.add_pi g)) in
  let decode addr i =
    let sel = ref Aig.Lit.const_true in
    Array.iteri
      (fun k bit ->
        sel := Aig.Network.add_and g !sel (Aig.Lit.xor_compl bit ((i lsr k) land 1 = 0)))
      addr;
    !sel
  in
  let wen' = Aig.Network.add_and g wen (Aig.Lit.neg lock) in
  for i = 0 to regs - 1 do
    let wsel = Aig.Network.add_and g (decode waddr i) wen' in
    Array.iteri
      (fun k d -> Aig.Network.add_po g (Aig.Network.add_mux g wsel wdata.(k) d))
      state.(i)
  done;
  let rdata = Array.make width Aig.Lit.const_false in
  for i = 0 to regs - 1 do
    let rsel = decode raddr i in
    Array.iteri
      (fun k d -> rdata.(k) <- Aig.Network.add_or g rdata.(k) (Aig.Network.add_and g d rsel))
      state.(i)
  done;
  Array.iter (Aig.Network.add_po g) rdata;
  g

(* The actual patch: take the original block and rebuild it with the gated
   write enable (an extra PI spliced in). *)
let patched () =
  let g = Aig.Network.create () in
  let base = Gen.Control.regfile ~regs ~width in
  (* interface of base: waddr(2) raddr(2) wdata(4) wen regs(16) *)
  let waddr = Array.init 2 (fun _ -> Aig.Network.add_pi g) in
  let raddr = Array.init 2 (fun _ -> Aig.Network.add_pi g) in
  let wdata = Array.init width (fun _ -> Aig.Network.add_pi g) in
  let wen = Aig.Network.add_pi g in
  let lock = Aig.Network.add_pi g in
  let state = Array.init (regs * width) (fun _ -> Aig.Network.add_pi g) in
  let wen' = Aig.Network.add_and g wen (Aig.Lit.neg lock) in
  let pi_map = Array.concat [ waddr; raddr; wdata; [| wen' |]; state ] in
  let outs = Aig.Miter.append g base ~pi_map in
  Array.iter (Aig.Network.add_po g) outs;
  g

let () =
  let pool = Par.Pool.create () in
  let reference = reference () in
  let patched = patched () in
  Printf.printf "reference: %s\npatched:   %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network reference))
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network patched));
  let miter = Aig.Miter.build reference patched in
  let c = Simsweep.Engine.check_with_fallback ~pool miter in
  (match c.Simsweep.Engine.final with
  | Simsweep.Engine.Proved -> print_endline "ECO verified: patch implements the intent"
  | Simsweep.Engine.Disproved (cex, po) ->
      Printf.printf "ECO WRONG at output %d, witness " po;
      Array.iter (fun v -> print_char (if v then '1' else '0')) cex;
      print_newline ()
  | Simsweep.Engine.Undecided -> print_endline "undecided");
  (* Sanity: an unpatched design must NOT verify against the intent. *)
  let unpatched =
    let g = Aig.Network.create () in
    let base = Gen.Control.regfile ~regs ~width in
    let pis = Array.init (Aig.Network.num_pis base + 1) (fun _ -> Aig.Network.add_pi g) in
    (* ignore the lock input entirely *)
    let pi_map = Array.append (Array.sub pis 0 9) (Array.sub pis 10 16) in
    let outs = Aig.Miter.append g base ~pi_map in
    Array.iter (Aig.Network.add_po g) outs;
    g
  in
  let miter2 = Aig.Miter.build reference unpatched in
  (match (Simsweep.Engine.check_with_fallback ~pool miter2).Simsweep.Engine.final with
  | Simsweep.Engine.Disproved (cex, po) ->
      let lock_index = 9 in
      Printf.printf
        "unpatched design correctly rejected (output %d); the witness sets lock=%b\n"
        po cex.(lock_index)
  | Simsweep.Engine.Proved -> print_endline "unexpected: unpatched design accepted"
  | Simsweep.Engine.Undecided -> print_endline "undecided");
  Par.Pool.shutdown pool
