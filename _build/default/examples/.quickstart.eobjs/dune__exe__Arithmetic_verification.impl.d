examples/arithmetic_verification.ml: Aig Array Format Gen Opt Par Printf Sim Simsweep Unix
