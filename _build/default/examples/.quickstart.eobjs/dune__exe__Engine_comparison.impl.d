examples/engine_comparison.ml: Aig Bdd Gen List Opt Par Printf Sat Simsweep Unix
