examples/quickstart.ml: Aig Array Format List Par Printf Simsweep
