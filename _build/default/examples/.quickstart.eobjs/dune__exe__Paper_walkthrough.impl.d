examples/paper_walkthrough.ml: Aig Array Format Par Printf Simsweep
