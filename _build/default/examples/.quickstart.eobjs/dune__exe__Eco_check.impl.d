examples/eco_check.ml: Aig Array Format Gen Par Printf Simsweep
