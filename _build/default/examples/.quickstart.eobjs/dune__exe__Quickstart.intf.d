examples/quickstart.mli:
