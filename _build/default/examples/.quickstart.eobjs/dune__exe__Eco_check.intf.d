examples/eco_check.mli:
