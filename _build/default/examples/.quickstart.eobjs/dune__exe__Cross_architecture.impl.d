examples/cross_architecture.ml: Aig Format Gen List Opt Par Printf Simsweep Unix
