examples/arithmetic_verification.mli:
