(* Equivalence-class manager: grouping, refinement, pair generation,
   renaming across reductions. *)

let mk_xor_copies () =
  (* Network with two structurally different XORs and one unrelated node. *)
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x1 = Aig.Network.add_xor g a b in
  let u = Aig.Network.add_and g a (Aig.Lit.neg b) in
  let v = Aig.Network.add_and g (Aig.Lit.neg a) b in
  let nxor = Aig.Network.add_and g (Aig.Lit.neg u) (Aig.Lit.neg v) in
  (* nxor is the complement of x1's node function *)
  let other = Aig.Network.add_and g a b in
  Aig.Network.add_po g x1;
  Aig.Network.add_po g (Aig.Lit.neg nxor);
  Aig.Network.add_po g other;
  (g, Aig.Lit.node x1, Aig.Lit.node nxor)

let classes_of g =
  Util.with_pool (fun pool ->
      let rng = Sim.Rng.create ~seed:123L in
      let sigs = Sim.Psim.run g ~nwords:4 ~rng ~pool ~embed:[] in
      Sim.Eclass.of_sigs g sigs ())

let test_grouping_with_phase () =
  let g, nx, nnx = mk_xor_copies () in
  let classes = classes_of g in
  (* x1 and nxor must share a class with complementary phases. *)
  let found =
    List.exists
      (fun c ->
        let members = Array.to_list c in
        List.mem_assoc nx members && List.mem_assoc nnx members
        && List.assoc nx members <> List.assoc nnx members)
      (Sim.Eclass.classes classes)
  in
  Alcotest.(check bool) "xor and xnor grouped with opposite phase" true found

let test_pairs () =
  let g, nx, nnx = mk_xor_copies () in
  let classes = classes_of g in
  let pairs = Sim.Eclass.pairs classes in
  let p =
    List.find_opt
      (fun { Sim.Eclass.repr; other; _ } -> repr = min nx nnx && other = max nx nnx)
      pairs
  in
  match p with
  | Some { Sim.Eclass.compl_; _ } ->
      Alcotest.(check bool) "complement flag" true compl_
  | None -> Alcotest.fail "expected the xor/xnor pair"

let test_refine_splits () =
  Util.with_pool (fun pool ->
      (* a&b and a&c look identical if b=c on all patterns; embedding a
         distinguishing pattern must split them. *)
      let g = Aig.Network.create () in
      let a = Aig.Network.add_pi g
      and b = Aig.Network.add_pi g
      and c = Aig.Network.add_pi g in
      let x = Aig.Network.add_and g a b in
      let y = Aig.Network.add_and g a c in
      Aig.Network.add_po g x;
      Aig.Network.add_po g y;
      (* Craft signatures where b = c: embed all patterns explicitly. *)
      let rng = Sim.Rng.create ~seed:9L in
      let same = List.init 8 (fun i -> [| i land 1 = 1; i land 2 = 2; i land 2 = 2 |]) in
      let sigs0 =
        Sim.Psim.run g ~nwords:1 ~rng ~pool
          ~embed:(same @ List.init 56 (fun _ -> [| false; false; false |]))
      in
      let classes = Sim.Eclass.of_sigs g sigs0 () in
      let in_same_class =
        List.exists
          (fun cl ->
            let ms = Array.to_list cl in
            List.mem_assoc (Aig.Lit.node x) ms && List.mem_assoc (Aig.Lit.node y) ms)
          (Sim.Eclass.classes classes)
      in
      Alcotest.(check bool) "initially together" true in_same_class;
      (* Distinguishing pattern a=1 b=1 c=0 splits them. *)
      let rng = Sim.Rng.create ~seed:10L in
      let sigs1 =
        Sim.Psim.run g ~nwords:1 ~rng ~pool ~embed:[ [| true; true; false |] ]
      in
      let refined = Sim.Eclass.refine classes sigs1 in
      let still_together =
        List.exists
          (fun cl ->
            let ms = Array.to_list cl in
            List.mem_assoc (Aig.Lit.node x) ms && List.mem_assoc (Aig.Lit.node y) ms)
          (Sim.Eclass.classes refined)
      in
      Alcotest.(check bool) "split after refinement" false still_together)

let test_remove () =
  let g, nx, nnx = mk_xor_copies () in
  let classes = classes_of g in
  let dropped = Hashtbl.create 4 in
  Hashtbl.replace dropped (max nx nnx) ();
  let classes' = Sim.Eclass.remove classes dropped in
  let any_left =
    List.exists
      (fun c -> Array.exists (fun (n, _) -> n = max nx nnx) c)
      (Sim.Eclass.classes classes')
  in
  Alcotest.(check bool) "node removed" false any_left

let test_map_nodes () =
  let g, nx, nnx = mk_xor_copies () in
  let classes = classes_of g in
  (* Rename with a shift and a complement: phases must adjust. *)
  let f n = Some (Aig.Lit.make (n + 100) (n = nnx)) in
  let mapped = Sim.Eclass.map_nodes classes f in
  let found =
    List.exists
      (fun c ->
        let ms = Array.to_list c in
        match (List.assoc_opt (nx + 100) ms, List.assoc_opt (nnx + 100) ms) with
        | Some p1, Some p2 ->
            (* Original phases differed; the extra complement on nnx makes
               them equal now. *)
            p1 = p2
        | _ -> false)
      (Sim.Eclass.classes mapped)
  in
  Alcotest.(check bool) "phase folded through complement" true found;
  (* Dropping a node via None removes it. *)
  let dropped = Sim.Eclass.map_nodes classes (fun n -> if n = nx then None else Some (Aig.Lit.make n false)) in
  let still =
    List.exists
      (fun c -> Array.exists (fun (n, _) -> n = nx) c)
      (Sim.Eclass.classes dropped)
  in
  Alcotest.(check bool) "dropped node gone" false still

let prop_representative_is_min =
  QCheck.Test.make ~name:"representative is the class minimum" ~count:40
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:5 ~nodes:60 seed in
      let classes = classes_of g in
      List.for_all
        (fun c ->
          let repr, ph = c.(0) in
          (not ph)
          && Array.for_all (fun (n, _) -> n >= repr) c
          && Array.length c >= 2)
        (Sim.Eclass.classes classes))

let prop_classes_disjoint =
  QCheck.Test.make ~name:"classes are disjoint" ~count:40 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:5 ~nodes:60 seed in
      let classes = classes_of g in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      List.iter
        (Array.iter (fun (n, _) ->
             if Hashtbl.mem seen n then ok := false;
             Hashtbl.replace seen n ()))
        (Sim.Eclass.classes classes);
      !ok)

let () =
  Alcotest.run "eclass"
    [
      ( "unit",
        [
          Alcotest.test_case "grouping with phase" `Quick test_grouping_with_phase;
          Alcotest.test_case "pairs" `Quick test_pairs;
          Alcotest.test_case "refine splits" `Quick test_refine_splits;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "map_nodes" `Quick test_map_nodes;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_representative_is_min; prop_classes_disjoint ] );
    ]
