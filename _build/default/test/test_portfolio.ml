(* Portfolio checker (Conformal stand-in): engine selection and
   correctness. *)

let check ?bdd_node_limit m =
  Util.with_pool (fun pool -> Simsweep.Portfolio.check ?bdd_node_limit ~pool m)

let test_bdd_wins_on_voter () =
  (* Symmetric control logic: the BDD engine should answer first — the
     Table II crossover where Conformal beats the GPU engine on voter. *)
  let g = Gen.Control.voter ~n:15 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let r = check m in
  Alcotest.(check bool) "proved" true (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
  match r.Simsweep.Portfolio.winner with
  | Some Simsweep.Portfolio.Bdd_engine -> ()
  | w ->
      Alcotest.failf "expected bdd winner, got %s"
        (match w with Some e -> Simsweep.Portfolio.engine_name e | None -> "none")

let test_sim_engine_on_multiplier () =
  (* Multipliers blow the BDD budget; the simulation engine takes over. *)
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let r = check ~bdd_node_limit:1000 m in
  Alcotest.(check bool) "proved" true (r.Simsweep.Portfolio.outcome = Simsweep.Engine.Proved);
  match r.Simsweep.Portfolio.winner with
  | Some Simsweep.Portfolio.Sim_engine | Some Simsweep.Portfolio.Sat_engine -> ()
  | _ -> Alcotest.fail "expected a non-bdd winner"

let test_disproof () =
  let g = Gen.Arith.adder ~bits:5 in
  let bad = Aig.Network.copy g in
  Aig.Network.set_po bad 2 (Aig.Lit.neg (Aig.Network.po bad 2));
  let m = Aig.Miter.build g bad in
  let r = check m in
  match r.Simsweep.Portfolio.outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool) "cex valid" true (Sim.Cex.check m cex po)
  | _ -> Alcotest.fail "expected disproof"

let test_engine_names () =
  Alcotest.(check string) "bdd" "bdd" (Simsweep.Portfolio.engine_name Simsweep.Portfolio.Bdd_engine);
  Alcotest.(check string) "sim" "sim" (Simsweep.Portfolio.engine_name Simsweep.Portfolio.Sim_engine);
  Alcotest.(check string) "sat" "sat" (Simsweep.Portfolio.engine_name Simsweep.Portfolio.Sat_engine)

let prop_agrees_with_brute =
  QCheck.Test.make ~name:"portfolio agrees with brute force" ~count:15
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:5 ~nodes:35 ~pos:3 seed in
      let g2 =
        if seed mod 2 = 0 then Opt.Xorflip.run g1
        else Util.random_network ~pis:5 ~nodes:35 ~pos:3 (seed + 3)
      in
      let m = Aig.Miter.build g1 g2 in
      let expect = Util.equivalent_brute g1 g2 in
      let r = check m in
      match r.Simsweep.Portfolio.outcome with
      | Simsweep.Engine.Proved -> expect
      | Simsweep.Engine.Disproved (cex, po) -> (not expect) && Sim.Cex.check m cex po
      | Simsweep.Engine.Undecided -> false)

let () =
  Alcotest.run "portfolio"
    [
      ( "unit",
        [
          Alcotest.test_case "bdd wins voter" `Quick test_bdd_wins_on_voter;
          Alcotest.test_case "sim engine on multiplier" `Quick test_sim_engine_on_multiplier;
          Alcotest.test_case "disproof" `Quick test_disproof;
          Alcotest.test_case "names" `Quick test_engine_names;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_agrees_with_brute ]);
    ]
