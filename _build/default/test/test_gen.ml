(* Benchmark generators: functional correctness of the arithmetic circuits
   against integer reference computations, interface shapes, doubling and
   the Table II suite. *)

let eval_vec g cex lo len =
  (* Integer value of POs [lo, lo+len) under the assignment. *)
  let v = ref 0 in
  for i = 0 to len - 1 do
    if Sim.Cex.check g cex (lo + i) then v := !v lor (1 lsl i)
  done;
  !v

let input_assignment widths values total =
  let cex = Array.make total false in
  let off = ref 0 in
  List.iter2
    (fun w v ->
      for i = 0 to w - 1 do
        cex.(!off + i) <- (v lsr i) land 1 = 1
      done;
      off := !off + w)
    widths values;
  cex

let test_adder () =
  let bits = 5 in
  let g = Gen.Arith.adder ~bits in
  for _ = 1 to 50 do
    let a = Random.int 32 and b = Random.int 32 in
    let cex = input_assignment [ bits; bits ] [ a; b ] (2 * bits) in
    Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b)
      (eval_vec g cex 0 (bits + 1))
  done

let test_multiplier_square () =
  let bits = 5 in
  let g = Gen.Arith.multiplier ~bits in
  let s = Gen.Arith.square ~bits in
  for _ = 1 to 50 do
    let a = Random.int 32 and b = Random.int 32 in
    let cex = input_assignment [ bits; bits ] [ a; b ] (2 * bits) in
    Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
      (eval_vec g cex 0 (2 * bits));
    let cexs = input_assignment [ bits ] [ a ] bits in
    Alcotest.(check int) (Printf.sprintf "%d^2" a) (a * a)
      (eval_vec s cexs 0 (2 * bits))
  done

let test_sqrt () =
  let bits = 10 in
  let g = Gen.Arith.sqrt ~bits in
  for x = 0 to 1023 do
    let cex = input_assignment [ bits ] [ x ] bits in
    let expect = int_of_float (Float.sqrt (float_of_int x)) in
    (* Guard against float rounding at perfect squares. *)
    let expect = if (expect + 1) * (expect + 1) <= x then expect + 1 else expect in
    let expect = if expect * expect > x then expect - 1 else expect in
    Alcotest.(check int) (Printf.sprintf "isqrt %d" x) expect (eval_vec g cex 0 (bits / 2))
  done

let test_hypot () =
  let bits = 4 in
  let g = Gen.Arith.hypot ~bits in
  let out_bits = Aig.Network.num_pos g in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let cex = input_assignment [ bits; bits ] [ a; b ] (2 * bits) in
      let s = (a * a) + (b * b) in
      let expect =
        let r = int_of_float (Float.sqrt (float_of_int s)) in
        let r = if (r + 1) * (r + 1) <= s then r + 1 else r in
        if r * r > s then r - 1 else r
      in
      Alcotest.(check int) (Printf.sprintf "hypot %d %d" a b) expect
        (eval_vec g cex 0 out_bits)
    done
  done

let test_log2_integer_part () =
  let bits = 8 in
  let g = Gen.Arith.log2 ~bits ~frac:2 in
  (* PO 0 is the validity flag; POs 1..3 the leading-one position. *)
  for x = 1 to 255 do
    let cex = input_assignment [ bits ] [ x ] bits in
    Alcotest.(check bool) "valid" true (Sim.Cex.check g cex 0);
    let expect = int_of_float (Float.log2 (float_of_int x)) in
    Alcotest.(check int) (Printf.sprintf "ilog2 %d" x) expect (eval_vec g cex 1 3)
  done;
  let zero = input_assignment [ bits ] [ 0 ] bits in
  Alcotest.(check bool) "invalid on zero" false (Sim.Cex.check g zero 0)

let test_voter () =
  let n = 9 in
  let g = Gen.Control.voter ~n in
  for m = 0 to (1 lsl n) - 1 do
    let cex = Array.init n (fun i -> (m lsr i) land 1 = 1) in
    let pop = Array.fold_left (fun acc b -> acc + Bool.to_int b) 0 cex in
    if Sim.Cex.check g cex 0 <> (pop > n / 2) then
      Alcotest.failf "voter wrong at %d" m
  done

let test_regfile_read () =
  let g = Gen.Control.regfile ~regs:4 ~width:4 in
  (* Interface: waddr(2) raddr(2) wdata(4) wen(1) regs(4*4). *)
  let total = Aig.Network.num_pis g in
  Alcotest.(check int) "pis" (2 + 2 + 4 + 1 + 16) total;
  (* With wen=0 the next state equals the current state, and the read port
     returns the addressed register. *)
  let cex = Array.make total false in
  (* raddr = 2 *)
  cex.(3) <- true;
  (* reg2 = 0b1010: regs start at index 9, reg2 at 9 + 8. *)
  cex.(9 + 8 + 1) <- true;
  cex.(9 + 8 + 3) <- true;
  (* Outputs: 4 regs * 4 bits of next-state, then 4 bits of rdata. *)
  let rdata = eval_vec g cex 16 4 in
  Alcotest.(check int) "read reg2" 0b1010 rdata;
  (* Next state of reg2 unchanged. *)
  Alcotest.(check int) "reg2 kept" 0b1010 (eval_vec g cex 8 4)

let test_display_interface () =
  let g = Gen.Control.display ~hbits:6 ~vbits:5 in
  Alcotest.(check bool) "pos" true (Aig.Network.num_pos g > 10);
  Alcotest.(check bool) "shallow" true (Aig.Network.depth g < 30)

let test_sin_shape () =
  let g = Gen.Arith.sin ~bits:6 ~iters:6 in
  Alcotest.(check int) "pis" 6 (Aig.Network.num_pis g);
  Alcotest.(check bool) "substantial" true (Aig.Network.num_ands g > 200)

let test_double () =
  let g = Gen.Arith.adder ~bits:3 in
  let d = Gen.Double.double g in
  Alcotest.(check int) "pis doubled" (2 * Aig.Network.num_pis g) (Aig.Network.num_pis d);
  Alcotest.(check int) "pos doubled" (2 * Aig.Network.num_pos g) (Aig.Network.num_pos d);
  (* The two halves are independent: evaluate different sums. *)
  let cex = Array.make 12 false in
  (* first copy: 3 + 2; second copy: 7 + 1 *)
  cex.(0) <- true; cex.(1) <- true; (* a1 = 3 *)
  cex.(4) <- true; (* b1 = 2 *)
  cex.(6) <- true; cex.(7) <- true; cex.(8) <- true; (* a2 = 7 *)
  cex.(9) <- true; (* b2 = 1 *)
  let v1 = ref 0 and v2 = ref 0 in
  for i = 0 to 3 do
    if Sim.Cex.check d cex i then v1 := !v1 lor (1 lsl i);
    if Sim.Cex.check d cex (4 + i) then v2 := !v2 lor (1 lsl i)
  done;
  Alcotest.(check int) "copy 1" 5 !v1;
  Alcotest.(check int) "copy 2" 8 !v2;
  let t2 = Gen.Double.times 2 g in
  Alcotest.(check int) "times 2" (4 * Aig.Network.num_pis g) (Aig.Network.num_pis t2)

let test_suite_names () =
  Alcotest.(check int) "nine cases" 9 (List.length Gen.Suite.names);
  List.iter
    (fun n ->
      Alcotest.(check bool) ("known name " ^ n) true (List.mem n Gen.Suite.names))
    [ "hyp"; "log2"; "multiplier"; "sqrt"; "square"; "voter"; "sin"; "ac97_ctrl"; "vga_lcd" ]

let test_suite_miters_nontrivial () =
  (* Scale 0 (no doubling) keeps this fast; each miter must be a real
     problem: correct interface, unsolved initially. *)
  List.iter
    (fun name ->
      let case = Gen.Suite.build ~scale:0 name in
      Alcotest.(check int) (name ^ " pis")
        (Aig.Network.num_pis case.Gen.Suite.original)
        (Aig.Network.num_pis case.Gen.Suite.miter);
      Alcotest.(check bool) (name ^ " non-trivial") false
        (Aig.Miter.solved case.Gen.Suite.miter))
    [ "multiplier"; "square"; "voter"; "ac97_ctrl" ]

let prop_random_logic_shape =
  QCheck.Test.make ~name:"random_logic respects interface" ~count:30
    Util.arb_seed (fun seed ->
      let g =
        Gen.Control.random_logic ~pis:7 ~nodes:30 ~pos:5 ~seed:(Int64.of_int seed)
      in
      Aig.Network.num_pis g = 7
      && Aig.Network.num_pos g = 5
      && Aig.Network.check g = Ok ())

let () =
  Random.self_init ();
  Alcotest.run "gen"
    [
      ( "unit",
        [
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "multiplier/square" `Quick test_multiplier_square;
          Alcotest.test_case "sqrt" `Quick test_sqrt;
          Alcotest.test_case "hypot" `Quick test_hypot;
          Alcotest.test_case "log2 integer part" `Quick test_log2_integer_part;
          Alcotest.test_case "voter" `Quick test_voter;
          Alcotest.test_case "regfile" `Quick test_regfile_read;
          Alcotest.test_case "display" `Quick test_display_interface;
          Alcotest.test_case "sin shape" `Quick test_sin_shape;
          Alcotest.test_case "double" `Quick test_double;
          Alcotest.test_case "suite names" `Quick test_suite_names;
          Alcotest.test_case "suite miters" `Quick test_suite_miters_nontrivial;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_random_logic_shape ]);
    ]
