(* Miter construction and miter reduction (node merging + sweep). *)

let test_miter_identical () =
  (* Two copies of the same network strash together: trivially solved. *)
  let g = Util.random_network ~pis:5 ~nodes:30 17 in
  let m = Aig.Miter.build g (Aig.Network.copy g) in
  Alcotest.(check bool) "solved" true (Aig.Miter.solved m);
  Alcotest.(check bool) "no unsolved" true (Aig.Miter.unsolved_outputs m = [])

let test_miter_semantics () =
  (* The miter output is the XOR of the two circuits' outputs. *)
  let g1 = Util.random_network ~pis:5 ~nodes:30 ~pos:2 3 in
  let g2 = Util.random_network ~pis:5 ~nodes:30 ~pos:2 4 in
  let m = Aig.Miter.build g1 g2 in
  for pat = 0 to 31 do
    let cex = Array.init 5 (fun i -> (pat lsr i) land 1 = 1) in
    let o1 = Util.eval_outputs g1 cex
    and o2 = Util.eval_outputs g2 cex
    and om = Util.eval_outputs m cex in
    Array.iteri
      (fun i x ->
        Alcotest.(check bool)
          (Printf.sprintf "po %d pat %d" i pat)
          (o1.(i) <> o2.(i))
          x)
      om
  done

let test_miter_interface_mismatch () =
  let g1 = Util.random_network ~pis:4 ~nodes:10 1 in
  let g2 = Util.random_network ~pis:5 ~nodes:10 1 in
  Alcotest.check_raises "pi mismatch"
    (Invalid_argument "Miter.build: PI count mismatch") (fun () ->
      ignore (Aig.Miter.build g1 g2))

let test_sweep_removes_dangling () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let _dangling = Aig.Network.add_and g (Aig.Lit.neg a) (Aig.Lit.neg b) in
  Aig.Network.add_po g x;
  Alcotest.(check int) "before" 2 (Aig.Network.num_ands g);
  let r = Aig.Reduce.sweep g in
  Alcotest.(check int) "after" 1 (Aig.Network.num_ands r.Aig.Reduce.network);
  Alcotest.(check int) "pis preserved" 2 (Aig.Network.num_pis r.Aig.Reduce.network)

let test_merge_equivalent () =
  (* Build two structurally different XOR decompositions and merge them. *)
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x1 = Aig.Network.add_xor g a b in
  let u = Aig.Network.add_and g a (Aig.Lit.neg b) in
  let v = Aig.Network.add_and g (Aig.Lit.neg a) b in
  let x2 = Aig.Lit.neg (Aig.Network.add_and g (Aig.Lit.neg u) (Aig.Lit.neg v)) in
  Aig.Network.add_po g x1;
  Aig.Network.add_po g x2;
  let before = Util.global_tt g (Aig.Network.po g 1) in
  (* Merge node(x2) into x1 with the appropriate phase. *)
  let repl = Array.make (Aig.Network.num_nodes g) None in
  repl.(Aig.Lit.node x2) <- Some (Aig.Lit.xor_compl x1 (Aig.Lit.is_compl x2));
  let r = Aig.Reduce.apply g ~repl in
  let ng = r.Aig.Reduce.network in
  Alcotest.(check bool) "function preserved" true
    (Bv.Tt.equal before (Util.global_tt ng (Aig.Network.po ng 1)));
  Alcotest.(check bool) "network shrank" true
    (Aig.Network.num_ands ng < Aig.Network.num_ands g);
  (* Both POs now share the same driver node. *)
  Alcotest.(check int) "shared driver"
    (Aig.Lit.node (Aig.Network.po ng 0))
    (Aig.Lit.node (Aig.Network.po ng 1))

let test_node_map_translates () =
  let g = Util.random_network ~pis:4 ~nodes:20 ~pos:2 9 in
  let r = Aig.Reduce.sweep g in
  let ng = r.Aig.Reduce.network in
  (* Every PO driver must map consistently. *)
  Array.iteri
    (fun i l ->
      let m = r.Aig.Reduce.node_map.(Aig.Lit.node l) in
      let expect = Aig.Lit.xor_compl m (Aig.Lit.is_compl l) in
      Alcotest.(check int) (Printf.sprintf "po %d" i) (Aig.Network.po ng i) expect)
    (Aig.Network.pos g)

let prop_sweep_preserves_function =
  QCheck.Test.make ~name:"sweep preserves all outputs" ~count:60 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 ~pos:4 seed in
      let r = Aig.Reduce.sweep g in
      Util.equivalent_brute g r.Aig.Reduce.network)

let prop_merge_chain =
  QCheck.Test.make ~name:"replacement chains resolve" ~count:60 Util.arb_seed
    (fun seed ->
      (* Three equivalent nodes merged in a chain c -> b -> a. *)
      let g = Aig.Network.create () in
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let x = Aig.Network.add_pi g and y = Aig.Network.add_pi g in
      let mk () =
        (* same function x&y built with spurious structure *)
        let t = Aig.Network.add_and g x y in
        if Sim.Rng.bool rng then t else Aig.Network.add_and g t Aig.Lit.const_true
      in
      let a = mk () in
      let u = Aig.Network.add_and g x (Aig.Lit.neg y) in
      let b = Aig.Network.add_and g (Aig.Lit.neg u) x in
      (* b = x & !(x & !y) = x & y as well *)
      let c = Aig.Network.add_and g b Aig.Lit.const_true in
      Aig.Network.add_po g c;
      let before = Util.global_tt g (Aig.Network.po g 0) in
      let repl = Array.make (Aig.Network.num_nodes g) None in
      if Aig.Lit.node b <> Aig.Lit.node a && Aig.Lit.node b > Aig.Lit.node a then
        repl.(Aig.Lit.node b) <- Some a;
      if Aig.Lit.node c <> Aig.Lit.node b && Aig.Lit.node c > Aig.Lit.node b then
        repl.(Aig.Lit.node c) <- Some b;
      let r = Aig.Reduce.apply g ~repl in
      Bv.Tt.equal before (Util.global_tt r.Aig.Reduce.network (Aig.Network.po r.Aig.Reduce.network 0)))

let () =
  Alcotest.run "miter-reduce"
    [
      ( "unit",
        [
          Alcotest.test_case "identical miter" `Quick test_miter_identical;
          Alcotest.test_case "miter semantics" `Quick test_miter_semantics;
          Alcotest.test_case "interface mismatch" `Quick test_miter_interface_mismatch;
          Alcotest.test_case "sweep dangling" `Quick test_sweep_removes_dangling;
          Alcotest.test_case "merge equivalent" `Quick test_merge_equivalent;
          Alcotest.test_case "node map" `Quick test_node_map_translates;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sweep_preserves_function; prop_merge_chain ] );
    ]
