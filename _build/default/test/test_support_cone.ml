(* Structural support (capped and exact) and cone/window extraction. *)

let test_support_simple () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g
  and b = Aig.Network.add_pi g
  and c = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g x c in
  Aig.Network.add_po g y;
  let s = Aig.Support.exact g (Aig.Lit.node y) in
  Alcotest.(check (list int)) "support y"
    [ Aig.Lit.node a; Aig.Lit.node b; Aig.Lit.node c ]
    (Array.to_list s);
  let sizes = Aig.Support.size_capped g ~cap:8 in
  Alcotest.(check int) "size y" 3 sizes.(Aig.Lit.node y);
  Alcotest.(check int) "size x" 2 sizes.(Aig.Lit.node x);
  Alcotest.(check int) "size pi" 1 sizes.(Aig.Lit.node a);
  Alcotest.(check int) "size const" 0 sizes.(0)

let test_support_cap () =
  let g = Gen.Arith.adder ~bits:8 in
  let sizes = Aig.Support.size_capped g ~cap:4 in
  (* The MSB of an 8-bit adder depends on 16 inputs: over the cap. *)
  let msb = Aig.Lit.node (Aig.Network.po g 8) in
  Alcotest.(check int) "over cap" (-1) sizes.(msb)

let prop_capped_matches_exact =
  QCheck.Test.make ~name:"capped support equals exact below cap" ~count:50
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 seed in
      let capped = Aig.Support.capped g ~cap:6 in
      let ok = ref true in
      Aig.Network.iter_ands g (fun n ->
          match capped.(n) with
          | Some s -> if s <> Aig.Support.exact g n then ok := false
          | None -> ok := false (* cap = #PIs: nothing can exceed it *));
      !ok)

let prop_union_capped =
  QCheck.Test.make ~name:"union_capped is sorted union" ~count:200
    QCheck.(pair (list (int_bound 30)) (list (int_bound 30)))
    (fun (a, b) ->
      let sa = Array.of_list (List.sort_uniq compare a) in
      let sb = Array.of_list (List.sort_uniq compare b) in
      let expect = List.sort_uniq compare (a @ b) in
      match Aig.Support.union_capped ~cap:100 sa sb with
      | Some u -> Array.to_list u = expect
      | None -> false)

let test_union_cap_boundary () =
  let a = [| 1; 2; 3 |] and b = [| 4; 5 |] in
  Alcotest.(check bool) "exactly cap fits" true
    (Aig.Support.union_capped ~cap:5 a b <> None);
  Alcotest.(check bool) "cap-1 fails" true
    (Aig.Support.union_capped ~cap:4 a b = None);
  Alcotest.(check bool) "overlap counts once" true
    (Aig.Support.union_capped ~cap:3 [| 1; 2; 3 |] [| 2; 3 |] <> None)

let test_window_extraction () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g
  and b = Aig.Network.add_pi g
  and c = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g x c in
  let z = Aig.Network.add_and g y (Aig.Lit.neg a) in
  Aig.Network.add_po g z;
  let nz = Aig.Lit.node z and nx = Aig.Lit.node x and ny = Aig.Lit.node y in
  (* Cut {x, c, a} bounds z. *)
  (match
     Aig.Cone.extract g
       ~roots:[| nz |]
       ~inputs:[| Aig.Lit.node a; Aig.Lit.node c; nx |]
   with
  | Some w ->
      Alcotest.(check (list int)) "window nodes" [ ny; nz ]
        (Array.to_list w.Aig.Cone.nodes)
  | None -> Alcotest.fail "expected valid window");
  (* Cut {x} does not bound z (paths via c and a escape). *)
  Alcotest.(check bool) "invalid cut" true
    (Aig.Cone.extract g ~roots:[| nz |] ~inputs:[| nx |] = None)

let test_tfi () =
  let g = Gen.Arith.adder ~bits:4 in
  let po0 = Aig.Lit.node (Aig.Network.po g 0) in
  let mem = Aig.Cone.tfi g ~roots:[| po0 |] in
  (* Sum bit 0 depends only on a0, b0: its TFI must not contain the last
     PI. *)
  Alcotest.(check bool) "root in tfi" true mem.(po0);
  Alcotest.(check bool) "unrelated pi out" false mem.(Aig.Network.pi g 7)

let prop_window_nodes_topological =
  QCheck.Test.make ~name:"window nodes are topologically ordered" ~count:50
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 seed in
      (* Window of a PO over all PIs is always valid. *)
      let root = Aig.Lit.node (Aig.Network.po g 0) in
      if root = 0 || Aig.Network.is_pi g root then true
      else begin
        let inputs = Array.init 6 (fun i -> Aig.Network.pi g i) in
        match Aig.Cone.extract g ~roots:[| root |] ~inputs with
        | None -> false
        | Some w ->
            let sorted = Array.copy w.Aig.Cone.nodes in
            Array.sort compare sorted;
            sorted = w.Aig.Cone.nodes
            && Array.exists (fun n -> n = root) w.Aig.Cone.nodes
      end)

let () =
  Alcotest.run "support-cone"
    [
      ( "unit",
        [
          Alcotest.test_case "support simple" `Quick test_support_simple;
          Alcotest.test_case "support cap" `Quick test_support_cap;
          Alcotest.test_case "union cap boundary" `Quick test_union_cap_boundary;
          Alcotest.test_case "window extraction" `Quick test_window_extraction;
          Alcotest.test_case "tfi" `Quick test_tfi;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_capped_matches_exact;
            prop_union_capped;
            prop_window_nodes_topological;
          ] );
    ]
