(* Cut data structure, Table I selection criteria and priority-cut
   enumeration. *)

let test_cut_ops () =
  let a = [| 1; 3; 5 |] and b = [| 3; 4 |] in
  (match Cuts.Cut.merge ~cap:4 a b with
  | Some u -> Alcotest.(check (list int)) "union" [ 1; 3; 4; 5 ] (Array.to_list u)
  | None -> Alcotest.fail "merge fits");
  Alcotest.(check bool) "over cap" true (Cuts.Cut.merge ~cap:3 a b = None);
  Alcotest.(check bool) "subset" true (Cuts.Cut.subset [| 3 |] a);
  Alcotest.(check bool) "not subset" false (Cuts.Cut.subset [| 2 |] a);
  Alcotest.(check int) "trivial" 1 (Cuts.Cut.size (Cuts.Cut.trivial 9))

let test_similarity () =
  (* s({a,b}, [{a,b},{a,c}]) = 1 + 1/3. *)
  let s = Cuts.Cut.similarity [| 1; 2 |] [ [| 1; 2 |]; [| 1; 3 |] ] in
  Alcotest.(check (float 1e-9)) "jaccard sum" (1. +. (1. /. 3.)) s

let test_criteria_orders () =
  let fanouts = [| 0; 5; 1; 1 |] and levels = [| 0; 0; 2; 4 |] in
  let m c = Cuts.Criteria.metrics ~fanouts ~levels c in
  let hi_fanout = m [| 1 |] (* fanout 5, level 0, size 1 *)
  and lo_level = m [| 2 |] (* fanout 1, level 2 *)
  and hi_level = m [| 3 |] (* fanout 1, level 4 *) in
  let better pass a b = Cuts.Criteria.compare_metrics pass a b < 0 in
  Alcotest.(check bool) "pass1 prefers fanout" true
    (better Cuts.Criteria.Fanout_first hi_fanout lo_level);
  Alcotest.(check bool) "pass2 prefers small level" true
    (better Cuts.Criteria.Small_level_first lo_level hi_level);
  Alcotest.(check bool) "pass3 prefers large level" true
    (better Cuts.Criteria.Large_level_first hi_level lo_level);
  (* Tie on the main metric falls back to size. *)
  let small = m [| 2 |] and big = m [| 2; 3 |] in
  ignore big;
  let big' = Cuts.Criteria.metrics ~fanouts ~levels [| 2; 2 |] in
  Alcotest.(check bool) "size tie-break" true
    (Cuts.Criteria.compare_metrics Cuts.Criteria.Fanout_first small big' <= 0)

let compute_prio g ~k_l ~c ~pass =
  let fanouts = Aig.Network.fanout_counts g in
  let levels = Aig.Network.levels g in
  let prio = Array.make (Aig.Network.num_nodes g) [] in
  for i = 0 to Aig.Network.num_pis g - 1 do
    let p = Aig.Network.pi g i in
    prio.(p) <- [ Cuts.Cut.trivial p ]
  done;
  let cfg = { Cuts.Enumerate.k_l; c } in
  Aig.Network.iter_ands g (fun n ->
      prio.(n) <-
        Cuts.Enumerate.node_cuts g cfg ~pass ~fanouts ~levels ~prio
          ~sim_target:None n);
  prio

let prop_cuts_are_valid =
  QCheck.Test.make ~name:"every priority cut bounds its node" ~count:30
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 seed in
      let prio = compute_prio g ~k_l:4 ~c:6 ~pass:Cuts.Criteria.Fanout_first in
      let ok = ref true in
      Aig.Network.iter_ands g (fun n ->
          List.iter
            (fun cut ->
              if Array.length cut > 4 then ok := false;
              if not (Cuts.Cut.check g ~root:n cut) then ok := false)
            prio.(n));
      !ok)

let prop_cut_count_bounded =
  QCheck.Test.make ~name:"at most C cuts per node" ~count:30 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 seed in
      let prio = compute_prio g ~k_l:4 ~c:3 ~pass:Cuts.Criteria.Small_level_first in
      let ok = ref true in
      Aig.Network.iter_ands g (fun n ->
          if List.length prio.(n) > 3 then ok := false);
      !ok)

let test_enum_levels () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g x (Aig.Lit.neg b) in
  let z = Aig.Network.add_and g (Aig.Lit.neg x) b in
  Aig.Network.add_po g y;
  Aig.Network.add_po g z;
  (* Make z a non-representative whose representative is y. *)
  let repr_of n = if n = Aig.Lit.node z then Aig.Lit.node y else n in
  let el = Cuts.Enumerate.enum_levels g ~repr_of in
  Alcotest.(check int) "pi level" 0 el.(Aig.Lit.node a);
  Alcotest.(check int) "x" 1 el.(Aig.Lit.node x);
  Alcotest.(check int) "y (repr)" 2 el.(Aig.Lit.node y);
  (* z structurally has level 2 but must wait for its representative y. *)
  Alcotest.(check int) "z waits for repr" 3 el.(Aig.Lit.node z)

let prop_enum_levels_dependencies =
  QCheck.Test.make ~name:"enum levels respect fanin+repr dependencies"
    ~count:30 Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 seed in
      (* Arbitrary repr assignment: even AND nodes point to an earlier odd
         AND node when possible. *)
      let ands = ref [] in
      Aig.Network.iter_ands g (fun n -> ands := n :: !ands);
      let ands = Array.of_list (List.rev !ands) in
      let repr_of n =
        if Array.length ands > 0 && n mod 3 = 0 && Aig.Network.is_and g n then begin
          let r = ands.(0) in
          if r < n then r else n
        end
        else n
      in
      let el = Cuts.Enumerate.enum_levels g ~repr_of in
      let ok = ref true in
      Aig.Network.iter_ands g (fun n ->
          let f0 = Aig.Lit.node (Aig.Network.fanin0 g n) in
          let f1 = Aig.Lit.node (Aig.Network.fanin1 g n) in
          if el.(n) <= max el.(f0) el.(f1) then ok := false;
          let r = repr_of n in
          if r <> n && el.(n) <= el.(r) then ok := false);
      !ok)

let prop_common_cuts_valid_for_both =
  QCheck.Test.make ~name:"common cuts bound both pair nodes" ~count:20
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 seed in
      let prio = compute_prio g ~k_l:5 ~c:4 ~pass:Cuts.Criteria.Fanout_first in
      (* Pick two AND nodes and intersect their cut spaces. *)
      let ands = ref [] in
      Aig.Network.iter_ands g (fun n -> ands := n :: !ands);
      match !ands with
      | n1 :: n2 :: _ ->
          let common = Cuts.Enumerate.common_cuts ~k_l:5 prio.(n2) prio.(n1) in
          List.for_all
            (fun cut ->
              Cuts.Cut.check g ~root:n1 cut && Cuts.Cut.check g ~root:n2 cut)
            common
      | _ -> true)

let test_similarity_steering () =
  (* With similarity steering, a non-representative prefers cuts close to
     its representative's. *)
  let g = Gen.Arith.adder ~bits:4 in
  let fanouts = Aig.Network.fanout_counts g in
  let levels = Aig.Network.levels g in
  let prio = compute_prio g ~k_l:4 ~c:4 ~pass:Cuts.Criteria.Fanout_first in
  (* Choose some node with at least two cuts; steer toward its own set. *)
  let target = ref None in
  Aig.Network.iter_ands g (fun n ->
      if !target = None && List.length prio.(n) >= 3 then target := Some n);
  match !target with
  | None -> Alcotest.fail "no node with enough cuts"
  | Some n ->
      let cfg = { Cuts.Enumerate.k_l = 4; c = 2 } in
      let steered =
        Cuts.Enumerate.node_cuts g cfg ~pass:Cuts.Criteria.Fanout_first ~fanouts
          ~levels ~prio ~sim_target:(Some prio.(n)) n
      in
      let sim_of cuts =
        List.fold_left (fun acc c -> acc +. Cuts.Cut.similarity c prio.(n)) 0. cuts
      in
      let unsteered =
        Cuts.Enumerate.node_cuts g cfg ~pass:Cuts.Criteria.Large_level_first
          ~fanouts ~levels ~prio ~sim_target:None n
      in
      Alcotest.(check bool) "steered similarity at least as high" true
        (sim_of steered +. 1e-9 >= sim_of unsteered)

let () =
  Alcotest.run "cuts"
    [
      ( "unit",
        [
          Alcotest.test_case "cut ops" `Quick test_cut_ops;
          Alcotest.test_case "similarity" `Quick test_similarity;
          Alcotest.test_case "criteria" `Quick test_criteria_orders;
          Alcotest.test_case "enum levels" `Quick test_enum_levels;
          Alcotest.test_case "similarity steering" `Quick test_similarity_steering;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_cuts_are_valid;
            prop_cut_count_bounded;
            prop_enum_levels_dependencies;
            prop_common_cuts_valid_for_both;
          ] );
    ]
