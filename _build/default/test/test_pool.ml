(* Domain pool: the GPU stand-in must produce exactly the same results as
   a sequential loop, propagate exceptions, and survive reuse. *)

let with_pool n f =
  let pool = Par.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let test_parallel_sum () =
  with_pool 4 (fun pool ->
      let n = 10_000 in
      let out = Array.make n 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:n (fun i -> out.(i) <- i * i);
      let expect = Array.init n (fun i -> i * i) in
      Alcotest.(check bool) "all cells written" true (out = expect))

let test_empty_range () =
  with_pool 2 (fun pool ->
      let hit = ref false in
      Par.Pool.parallel_for pool ~start:5 ~stop:5 (fun _ -> hit := true);
      Par.Pool.parallel_for pool ~start:9 ~stop:3 (fun _ -> hit := true);
      Alcotest.(check bool) "body never runs" false !hit)

let test_sequential_pool () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "workers" 1 (Par.Pool.num_workers pool);
      let acc = ref 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:100 (fun i -> acc := !acc + i);
      Alcotest.(check int) "sum" 4950 !acc)

let test_exception () =
  with_pool 4 (fun pool ->
      let raised =
        try
          Par.Pool.parallel_for pool ~start:0 ~stop:1000 (fun i ->
              if i = 321 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      Alcotest.(check bool) "exception propagates" true raised;
      (* The pool must remain usable after a failed loop. *)
      let acc = Atomic.make 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:100 (fun _ ->
          ignore (Atomic.fetch_and_add acc 1));
      Alcotest.(check int) "pool survives" 100 (Atomic.get acc))

let test_reuse_many () =
  with_pool 4 (fun pool ->
      for round = 1 to 50 do
        let acc = Atomic.make 0 in
        Par.Pool.parallel_for pool ~start:0 ~stop:round (fun i ->
            ignore (Atomic.fetch_and_add acc i));
        Alcotest.(check int) "triangular" (round * (round - 1) / 2) (Atomic.get acc)
      done)

let test_nested () =
  (* Nested parallel_for must degrade to sequential, not deadlock. *)
  with_pool 4 (fun pool ->
      let acc = Atomic.make 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:8 (fun _ ->
          Par.Pool.parallel_for pool ~start:0 ~stop:8 (fun _ ->
              ignore (Atomic.fetch_and_add acc 1)));
      Alcotest.(check int) "64 iterations" 64 (Atomic.get acc))

let test_reduce () =
  with_pool 4 (fun pool ->
      let s =
        Par.Pool.parallel_reduce pool ~start:1 ~stop:1001 ~neutral:0
          ~body:(fun i -> i)
          ~combine:( + )
      in
      Alcotest.(check int) "sum 1..1000" 500500 s;
      let m =
        Par.Pool.parallel_reduce pool ~start:0 ~stop:100 ~neutral:min_int
          ~body:(fun i -> (i * 37) mod 101)
          ~combine:max
      in
      let expect = ref min_int in
      for i = 0 to 99 do
        expect := max !expect ((i * 37) mod 101)
      done;
      Alcotest.(check int) "max" !expect m)

let test_reduce_deterministic () =
  (* Regression: list append is associative but NOT commutative, so any
     scheduling-order dependence in parallel_reduce shows up as a permuted
     result.  Must equal the sequential left fold, every run, every chunking. *)
  with_pool 4 (fun pool ->
      let n = 500 in
      let expect = List.init n Fun.id in
      List.iter
        (fun chunk ->
          for _run = 1 to 10 do
            let got =
              match chunk with
              | None ->
                  Par.Pool.parallel_reduce pool ~start:0 ~stop:n ~neutral:[]
                    ~body:(fun i -> [ i ])
                    ~combine:( @ )
              | Some chunk ->
                  Par.Pool.parallel_reduce ~chunk pool ~start:0 ~stop:n
                    ~neutral:[]
                    ~body:(fun i -> [ i ])
                    ~combine:( @ )
            in
            Alcotest.(check (list int)) "in order" expect got
          done)
        [ None; Some 1; Some 7; Some 64; Some 1000 ])

let test_shutdown_idempotent () =
  let pool = Par.Pool.create ~num_domains:3 () in
  Par.Pool.parallel_for pool ~start:0 ~stop:10 (fun _ -> ());
  Par.Pool.shutdown pool;
  (* A second shutdown (e.g. an at_exit hook after an explicit one) must be
     a no-op, not a hang on already-joined domains. *)
  Par.Pool.shutdown pool;
  Alcotest.(check pass) "second shutdown returns" () ()

let prop_matches_sequential =
  QCheck.Test.make ~name:"parallel_for equals sequential map" ~count:30
    QCheck.(pair (int_range 0 500) (int_range 1 64))
    (fun (n, chunk) ->
      with_pool 3 (fun pool ->
          let a = Array.make (max n 1) 0 in
          Par.Pool.parallel_for pool ~chunk ~start:0 ~stop:n (fun i ->
              a.(i) <- (i * 17) lxor 5);
          let ok = ref true in
          for i = 0 to n - 1 do
            if a.(i) <> (i * 17) lxor 5 then ok := false
          done;
          !ok))

let () =
  Alcotest.run "pool"
    [
      ( "unit",
        [
          Alcotest.test_case "parallel sum" `Quick test_parallel_sum;
          Alcotest.test_case "empty range" `Quick test_empty_range;
          Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
          Alcotest.test_case "exception" `Quick test_exception;
          Alcotest.test_case "reuse" `Quick test_reuse_many;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "reduce deterministic" `Quick test_reduce_deterministic;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_matches_sequential ]);
    ]
