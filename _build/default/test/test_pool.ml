(* Domain pool: the GPU stand-in must produce exactly the same results as
   a sequential loop, propagate exceptions, and survive reuse. *)

let with_pool n f =
  let pool = Par.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)

let test_parallel_sum () =
  with_pool 4 (fun pool ->
      let n = 10_000 in
      let out = Array.make n 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:n (fun i -> out.(i) <- i * i);
      let expect = Array.init n (fun i -> i * i) in
      Alcotest.(check bool) "all cells written" true (out = expect))

let test_empty_range () =
  with_pool 2 (fun pool ->
      let hit = ref false in
      Par.Pool.parallel_for pool ~start:5 ~stop:5 (fun _ -> hit := true);
      Par.Pool.parallel_for pool ~start:9 ~stop:3 (fun _ -> hit := true);
      Alcotest.(check bool) "body never runs" false !hit)

let test_sequential_pool () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "workers" 1 (Par.Pool.num_workers pool);
      let acc = ref 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:100 (fun i -> acc := !acc + i);
      Alcotest.(check int) "sum" 4950 !acc)

let test_exception () =
  with_pool 4 (fun pool ->
      let raised =
        try
          Par.Pool.parallel_for pool ~start:0 ~stop:1000 (fun i ->
              if i = 321 then failwith "boom");
          false
        with Failure m -> m = "boom"
      in
      Alcotest.(check bool) "exception propagates" true raised;
      (* The pool must remain usable after a failed loop. *)
      let acc = Atomic.make 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:100 (fun _ ->
          ignore (Atomic.fetch_and_add acc 1));
      Alcotest.(check int) "pool survives" 100 (Atomic.get acc))

let test_reuse_many () =
  with_pool 4 (fun pool ->
      for round = 1 to 50 do
        let acc = Atomic.make 0 in
        Par.Pool.parallel_for pool ~start:0 ~stop:round (fun i ->
            ignore (Atomic.fetch_and_add acc i));
        Alcotest.(check int) "triangular" (round * (round - 1) / 2) (Atomic.get acc)
      done)

let test_nested () =
  (* Nested parallel_for must degrade to sequential, not deadlock. *)
  with_pool 4 (fun pool ->
      let acc = Atomic.make 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:8 (fun _ ->
          Par.Pool.parallel_for pool ~start:0 ~stop:8 (fun _ ->
              ignore (Atomic.fetch_and_add acc 1)));
      Alcotest.(check int) "64 iterations" 64 (Atomic.get acc))

let test_reduce () =
  with_pool 4 (fun pool ->
      let s =
        Par.Pool.parallel_reduce pool ~start:1 ~stop:1001 ~neutral:0
          ~body:(fun i -> i)
          ~combine:( + )
      in
      Alcotest.(check int) "sum 1..1000" 500500 s;
      let m =
        Par.Pool.parallel_reduce pool ~start:0 ~stop:100 ~neutral:min_int
          ~body:(fun i -> (i * 37) mod 101)
          ~combine:max
      in
      let expect = ref min_int in
      for i = 0 to 99 do
        expect := max !expect ((i * 37) mod 101)
      done;
      Alcotest.(check int) "max" !expect m)

let test_reduce_deterministic () =
  (* Regression: list append is associative but NOT commutative, so any
     scheduling-order dependence in parallel_reduce shows up as a permuted
     result.  Must equal the sequential left fold, every run, every chunking. *)
  with_pool 4 (fun pool ->
      let n = 500 in
      let expect = List.init n Fun.id in
      List.iter
        (fun chunk ->
          for _run = 1 to 10 do
            let got =
              match chunk with
              | None ->
                  Par.Pool.parallel_reduce pool ~start:0 ~stop:n ~neutral:[]
                    ~body:(fun i -> [ i ])
                    ~combine:( @ )
              | Some chunk ->
                  Par.Pool.parallel_reduce ~chunk pool ~start:0 ~stop:n
                    ~neutral:[]
                    ~body:(fun i -> [ i ])
                    ~combine:( @ )
            in
            Alcotest.(check (list int)) "in order" expect got
          done)
        [ None; Some 1; Some 7; Some 64; Some 1000 ])

let test_shutdown_idempotent () =
  let pool = Par.Pool.create ~num_domains:3 () in
  Par.Pool.parallel_for pool ~start:0 ~stop:10 (fun _ -> ());
  Par.Pool.shutdown pool;
  (* A second shutdown (e.g. an at_exit hook after an explicit one) must be
     a no-op, not a hang on already-joined domains. *)
  Par.Pool.shutdown pool;
  Alcotest.(check pass) "second shutdown returns" () ()

let test_region_equivalence () =
  (* parallel_region is a scheduling hint only: results inside a region must
     be identical to the same loops outside one. *)
  with_pool 4 (fun pool ->
      let n = 5_000 in
      let inside = Array.make n 0 and outside = Array.make n 0 in
      Par.Pool.parallel_region pool (fun () ->
          for _ = 1 to 5 do
            Par.Pool.parallel_for pool ~start:0 ~stop:n (fun i ->
                inside.(i) <- inside.(i) + (i * 3))
          done);
      for _ = 1 to 5 do
        Par.Pool.parallel_for pool ~start:0 ~stop:n (fun i ->
            outside.(i) <- outside.(i) + (i * 3))
      done;
      Alcotest.(check bool) "same results" true (inside = outside);
      let s = Par.Pool.stats pool in
      Alcotest.(check int) "one region" 1 s.Par.Pool.regions;
      Alcotest.(check int) "five region jobs" 5 s.Par.Pool.region_jobs)

let test_region_nested_sequential () =
  (* A region opened from inside a worker body (or inside another region)
     must not try to re-enter the scheduler: loops under it still run, and
     nesting falls back to plain sequential execution. *)
  with_pool 4 (fun pool ->
      let acc = Atomic.make 0 in
      Par.Pool.parallel_region pool (fun () ->
          Par.Pool.parallel_region pool (fun () ->
              Par.Pool.parallel_for pool ~start:0 ~stop:64 (fun _ ->
                  ignore (Atomic.fetch_and_add acc 1))));
      Alcotest.(check int) "inner loop ran" 64 (Atomic.get acc);
      let s = Par.Pool.stats pool in
      Alcotest.(check int) "inner region not counted" 1 s.Par.Pool.regions;
      (* From a worker body: the region must no-op and the loop must run
         sequentially in that worker. *)
      let acc2 = Atomic.make 0 in
      Par.Pool.parallel_for pool ~start:0 ~stop:4 (fun _ ->
          Par.Pool.parallel_region pool (fun () ->
              Par.Pool.parallel_for pool ~start:0 ~stop:16 (fun _ ->
                  ignore (Atomic.fetch_and_add acc2 1))));
      Alcotest.(check int) "worker-body region sequential" 64 (Atomic.get acc2);
      Alcotest.(check int) "still one region" 1 (Par.Pool.stats pool).Par.Pool.regions)

let test_region_exception () =
  (* An exception inside a region must close it (region state restored). *)
  with_pool 2 (fun pool ->
      (try Par.Pool.parallel_region pool (fun () -> failwith "boom")
       with Failure _ -> ());
      (* If the region leaked, this second region would be treated as nested
         and not counted. *)
      Par.Pool.parallel_region pool (fun () ->
          Par.Pool.parallel_for pool ~start:0 ~stop:8 (fun _ -> ()));
      Alcotest.(check int) "both regions counted" 2
        (Par.Pool.stats pool).Par.Pool.regions)

let test_job_released_after_barrier () =
  (* Regression: parallel_for must drop its job record at barrier exit, or
     the last loop body's closure (and everything it captures) stays
     reachable from the pool until the next dispatch. *)
  with_pool 2 (fun pool ->
      let weak = Weak.create 1 in
      (* The body closure captures the payload directly: if the pool keeps
         the job record alive, the payload cannot be collected. *)
      (let payload = Bytes.create (1 lsl 16) in
       Weak.set weak 0 (Some payload);
       Par.Pool.parallel_for pool ~start:0 ~stop:100 (fun _ ->
           ignore (Sys.opaque_identity (Bytes.length payload))));
      Gc.full_major ();
      Gc.full_major ();
      Alcotest.(check bool) "captured payload collected" false
        (Weak.check weak 0))

let test_steal_counts_consistent () =
  (* Steals are a subset of chunk claims, and claims cover the whole range. *)
  with_pool 4 (fun pool ->
      (* Uneven bodies to provoke stealing. *)
      Par.Pool.parallel_for pool ~chunk:1 ~start:0 ~stop:64 (fun i ->
          if i < 4 then begin
            let t = Unix.gettimeofday () in
            while Unix.gettimeofday () -. t < 0.01 do
              ignore (Sys.opaque_identity i)
            done
          end);
      let s = Par.Pool.stats pool in
      let claims = Array.fold_left ( + ) 0 s.Par.Pool.chunks_per_worker in
      let steals = Array.fold_left ( + ) 0 s.Par.Pool.steals in
      (* chunk=1 over [0,64): every index is its own claim. *)
      Alcotest.(check int) "claims cover range" 64 claims;
      Alcotest.(check bool) "steals <= claims" true (steals <= claims);
      Array.iteri
        (fun w st ->
          Alcotest.(check bool)
            (Printf.sprintf "worker %d steals <= claims" w)
            true
            (st <= s.Par.Pool.chunks_per_worker.(w)))
        s.Par.Pool.steals)

let prop_matches_sequential =
  QCheck.Test.make ~name:"parallel_for equals sequential map" ~count:30
    QCheck.(pair (int_range 0 500) (int_range 1 64))
    (fun (n, chunk) ->
      with_pool 3 (fun pool ->
          let a = Array.make (max n 1) 0 in
          Par.Pool.parallel_for pool ~chunk ~start:0 ~stop:n (fun i ->
              a.(i) <- (i * 17) lxor 5);
          let ok = ref true in
          for i = 0 to n - 1 do
            if a.(i) <> (i * 17) lxor 5 then ok := false
          done;
          !ok))

let () =
  Alcotest.run "pool"
    [
      ( "unit",
        [
          Alcotest.test_case "parallel sum" `Quick test_parallel_sum;
          Alcotest.test_case "empty range" `Quick test_empty_range;
          Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
          Alcotest.test_case "exception" `Quick test_exception;
          Alcotest.test_case "reuse" `Quick test_reuse_many;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "reduce" `Quick test_reduce;
          Alcotest.test_case "reduce deterministic" `Quick test_reduce_deterministic;
          Alcotest.test_case "region equivalence" `Quick test_region_equivalence;
          Alcotest.test_case "region nested sequential" `Quick
            test_region_nested_sequential;
          Alcotest.test_case "region exception" `Quick test_region_exception;
          Alcotest.test_case "job released after barrier" `Quick
            test_job_released_after_barrier;
          Alcotest.test_case "steal counts" `Quick test_steal_counts_consistent;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_matches_sequential ]);
    ]
