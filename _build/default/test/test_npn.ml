(* NPN canonicalization: transform algebra and canonical-form invariance. *)

let arb_tt = QCheck.int_bound 65535

let arb_transform =
  let gen =
    QCheck.Gen.(
      let* p = int_bound 23 in
      let* ic = int_bound 15 in
      let* oc = bool in
      let perms =
        [
          [| 0; 1; 2; 3 |]; [| 0; 1; 3; 2 |]; [| 0; 2; 1; 3 |]; [| 0; 2; 3; 1 |];
          [| 0; 3; 1; 2 |]; [| 0; 3; 2; 1 |]; [| 1; 0; 2; 3 |]; [| 1; 0; 3; 2 |];
          [| 1; 2; 0; 3 |]; [| 1; 2; 3; 0 |]; [| 1; 3; 0; 2 |]; [| 1; 3; 2; 0 |];
          [| 2; 0; 1; 3 |]; [| 2; 0; 3; 1 |]; [| 2; 1; 0; 3 |]; [| 2; 1; 3; 0 |];
          [| 2; 3; 0; 1 |]; [| 2; 3; 1; 0 |]; [| 3; 0; 1; 2 |]; [| 3; 0; 2; 1 |];
          [| 3; 1; 0; 2 |]; [| 3; 1; 2; 0 |]; [| 3; 2; 0; 1 |]; [| 3; 2; 1; 0 |];
        ]
      in
      return
        { Bv.Npn.perm = List.nth perms p; input_compl = ic; output_compl = oc })
  in
  QCheck.make gen

let prop_identity =
  QCheck.Test.make ~name:"identity transform" ~count:200 arb_tt (fun tt ->
      Bv.Npn.apply Bv.Npn.identity tt = tt)

let prop_invert =
  QCheck.Test.make ~name:"invert undoes apply" ~count:500
    (QCheck.pair arb_tt arb_transform) (fun (tt, tf) ->
      Bv.Npn.apply (Bv.Npn.invert tf) (Bv.Npn.apply tf tt) = tt)

let prop_compose =
  QCheck.Test.make ~name:"compose = nested apply" ~count:500
    (QCheck.triple arb_tt arb_transform arb_transform) (fun (tt, a, b) ->
      Bv.Npn.apply (Bv.Npn.compose a b) tt = Bv.Npn.apply a (Bv.Npn.apply b tt))

let prop_canon_witness =
  QCheck.Test.make ~name:"canonize returns a correct witness" ~count:300 arb_tt
    (fun tt ->
      let canon, tf = Bv.Npn.canonize tt in
      Bv.Npn.apply tf tt = canon)

let prop_canon_invariant =
  QCheck.Test.make ~name:"canonical form is transform-invariant" ~count:300
    (QCheck.pair arb_tt arb_transform) (fun (tt, tf) ->
      let c1, _ = Bv.Npn.canonize tt in
      let c2, _ = Bv.Npn.canonize (Bv.Npn.apply tf tt) in
      c1 = c2)

let prop_canon_minimal =
  QCheck.Test.make ~name:"canonical form is <= the function" ~count:300 arb_tt
    (fun tt ->
      let c, _ = Bv.Npn.canonize tt in
      c <= tt)

let test_known_classes () =
  (* Constants are their own classes: canon(0x0000) = 0, and the constant-1
     function canonizes to 0 via output complement. *)
  Alcotest.(check int) "const0" 0 (fst (Bv.Npn.canonize 0x0000));
  Alcotest.(check int) "const1" 0 (fst (Bv.Npn.canonize 0xffff));
  (* All single-variable projections share a class. *)
  let c0 = fst (Bv.Npn.canonize 0xaaaa) in
  Alcotest.(check int) "x1 class" c0 (fst (Bv.Npn.canonize 0xcccc));
  Alcotest.(check int) "x2 class" c0 (fst (Bv.Npn.canonize 0xf0f0));
  Alcotest.(check int) "x3 class" c0 (fst (Bv.Npn.canonize 0xff00));
  Alcotest.(check int) "!x0 class" c0 (fst (Bv.Npn.canonize 0x5555))

let test_class_count () =
  (* The number of NPN classes of 4-variable functions is 222 — a classical
     result; a full sweep doubles as a stress test of [canonize]. *)
  let seen = Hashtbl.create 256 in
  for tt = 0 to 65535 do
    Hashtbl.replace seen (fst (Bv.Npn.canonize tt)) ()
  done;
  Alcotest.(check int) "222 classes" 222 (Hashtbl.length seen)

let () =
  Alcotest.run "npn"
    [
      ( "unit",
        [
          Alcotest.test_case "known classes" `Quick test_known_classes;
          Alcotest.test_case "222 classes" `Slow test_class_count;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_identity;
            prop_invert;
            prop_compose;
            prop_canon_witness;
            prop_canon_invariant;
            prop_canon_minimal;
          ] );
    ]
