(* Alternative-architecture generators: Wallace multiplier, divider, barrel
   shifter, ALU — all verified against integer reference semantics, and the
   Wallace-vs-array cross-architecture equivalence that gives the checker a
   workload with no shared structure. *)

let eval_vec g cex lo len =
  let v = ref 0 in
  for i = 0 to len - 1 do
    if Sim.Cex.check g cex (lo + i) then v := !v lor (1 lsl i)
  done;
  !v

let input_assignment widths values total =
  let cex = Array.make total false in
  let off = ref 0 in
  List.iter2
    (fun w v ->
      for i = 0 to w - 1 do
        cex.(!off + i) <- (v lsr i) land 1 = 1
      done;
      off := !off + w)
    widths values;
  cex

let test_wallace_correct () =
  let bits = 5 in
  let g = Gen.Wallace.multiplier ~bits in
  for _ = 1 to 60 do
    let a = Random.int 32 and b = Random.int 32 in
    let cex = input_assignment [ bits; bits ] [ a; b ] (2 * bits) in
    Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
      (eval_vec g cex 0 (2 * bits))
  done

let test_wallace_shallower () =
  (* The reduction tree must beat the array multiplier's depth. *)
  let bits = 10 in
  let w = Gen.Wallace.multiplier ~bits in
  let a = Gen.Arith.multiplier ~bits in
  Alcotest.(check bool) "shallower" true (Aig.Network.depth w < Aig.Network.depth a)

let test_wallace_vs_array_cec () =
  (* Cross-architecture equivalence: the headline adoption scenario. *)
  Util.with_pool (fun pool ->
      let bits = 6 in
      let m =
        Aig.Miter.build (Gen.Arith.multiplier ~bits) (Gen.Wallace.multiplier ~bits)
      in
      Alcotest.(check bool) "non-trivial" false (Aig.Miter.solved m);
      let c = Simsweep.Engine.check_with_fallback ~pool m in
      Alcotest.(check bool) "proved" true
        (c.Simsweep.Engine.final = Simsweep.Engine.Proved))

let test_divider () =
  let bits = 5 in
  let g = Gen.Divider.divide ~bits in
  for _ = 1 to 100 do
    let a = Random.int 32 and b = Random.int 32 in
    let cex = input_assignment [ bits; bits ] [ a; b ] (2 * bits) in
    let q = eval_vec g cex 0 bits and r = eval_vec g cex bits bits in
    if b = 0 then begin
      Alcotest.(check int) "div0 quotient" 31 q;
      Alcotest.(check int) "div0 remainder" a r
    end
    else begin
      Alcotest.(check int) (Printf.sprintf "%d/%d" a b) (a / b) q;
      Alcotest.(check int) (Printf.sprintf "%d mod %d" a b) (a mod b) r
    end
  done

let test_divider_deep () =
  let g = Gen.Divider.divide ~bits:16 in
  Alcotest.(check bool) "deep circuit" true (Aig.Network.depth g > 100)

let test_barrel_shift () =
  let bits = 8 in
  let g = Gen.Barrel.shifter ~bits ~rotate:false in
  for _ = 1 to 60 do
    let x = Random.int 256 and s = Random.int 8 in
    let cex = input_assignment [ bits; 3 ] [ x; s ] (bits + 3) in
    Alcotest.(check int)
      (Printf.sprintf "%d << %d" x s)
      ((x lsl s) land 255)
      (eval_vec g cex 0 bits)
  done

let test_barrel_rotate () =
  let bits = 8 in
  let g = Gen.Barrel.shifter ~bits ~rotate:true in
  for _ = 1 to 60 do
    let x = Random.int 256 and s = Random.int 8 in
    let cex = input_assignment [ bits; 3 ] [ x; s ] (bits + 3) in
    let expect = ((x lsl s) lor (x lsr (8 - s))) land 255 in
    Alcotest.(check int) (Printf.sprintf "%d rol %d" x s) expect (eval_vec g cex 0 bits)
  done;
  Alcotest.check_raises "power of two"
    (Invalid_argument "Barrel.shifter: bits must be a power of two") (fun () ->
      ignore (Gen.Barrel.shifter ~bits:6 ~rotate:false))

let test_alu () =
  let bits = 6 in
  let g = Gen.Alu.alu ~bits in
  let mask = (1 lsl bits) - 1 in
  for _ = 1 to 200 do
    let a = Random.int 64 and b = Random.int 64 and op = Random.int 8 in
    let cex = input_assignment [ bits; bits; 3 ] [ a; b; op ] ((2 * bits) + 3) in
    let expect =
      match op with
      | 0 -> (a + b) land mask
      | 1 -> (a - b) land mask
      | 2 -> a land b
      | 3 -> a lor b
      | 4 -> a lxor b
      | 5 -> (a lsl 1) land mask
      | 6 -> a lsr 1
      | _ -> a
    in
    Alcotest.(check int)
      (Printf.sprintf "alu op=%d a=%d b=%d" op a b)
      expect (eval_vec g cex 0 bits);
    (* Flags. *)
    let carry = Sim.Cex.check g cex bits in
    (match op with
    | 0 -> Alcotest.(check bool) "add carry" (a + b > mask) carry
    | 1 -> Alcotest.(check bool) "sub no-borrow" (a >= b) carry
    | _ -> ());
    Alcotest.(check bool) "zero flag" (expect = 0) (Sim.Cex.check g cex (bits + 1))
  done

let test_alu_vs_resyn2 () =
  Util.with_pool (fun pool ->
      let g = Gen.Alu.alu ~bits:6 in
      let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
      let c = Simsweep.Engine.check_with_fallback ~pool m in
      Alcotest.(check bool) "alu verified" true
        (c.Simsweep.Engine.final = Simsweep.Engine.Proved))

let prop_wallace_equals_array =
  QCheck.Test.make ~name:"wallace = array multiplier (SAT-checked)" ~count:4
    (QCheck.int_range 3 6) (fun bits ->
      Util.with_pool (fun pool ->
          let m =
            Aig.Miter.build (Gen.Arith.multiplier ~bits)
              (Gen.Wallace.multiplier ~bits)
          in
          fst (Sat.Sweep.check ~pool m) = Sat.Sweep.Equivalent))

let prop_shift_composition =
  QCheck.Test.make ~name:"rotate by s then bits-s is identity" ~count:40
    (QCheck.pair (QCheck.int_bound 255) (QCheck.int_range 1 7))
    (fun (x, s) ->
      let g = Gen.Barrel.shifter ~bits:8 ~rotate:true in
      let rot v k =
        let cex = input_assignment [ 8; 3 ] [ v; k ] 11 in
        eval_vec g cex 0 8
      in
      rot (rot x s) (8 - s) land 255 = x)

let () =
  Random.self_init ();
  Alcotest.run "gen2"
    [
      ( "unit",
        [
          Alcotest.test_case "wallace correct" `Quick test_wallace_correct;
          Alcotest.test_case "wallace shallower" `Quick test_wallace_shallower;
          Alcotest.test_case "wallace vs array CEC" `Quick test_wallace_vs_array_cec;
          Alcotest.test_case "divider" `Quick test_divider;
          Alcotest.test_case "divider deep" `Quick test_divider_deep;
          Alcotest.test_case "barrel shift" `Quick test_barrel_shift;
          Alcotest.test_case "barrel rotate" `Quick test_barrel_rotate;
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "alu vs resyn2" `Quick test_alu_vs_resyn2;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_wallace_equals_array; prop_shift_composition ] );
    ]
