(* AIG construction: structural hashing, constant propagation, derived
   gates, levels, fanouts and invariants. *)

let test_const_prop () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g in
  Alcotest.(check int) "a&0" Aig.Lit.const_false
    (Aig.Network.add_and g a Aig.Lit.const_false);
  Alcotest.(check int) "a&1" a (Aig.Network.add_and g a Aig.Lit.const_true);
  Alcotest.(check int) "a&a" a (Aig.Network.add_and g a a);
  Alcotest.(check int) "a&!a" Aig.Lit.const_false
    (Aig.Network.add_and g a (Aig.Lit.neg a));
  Alcotest.(check int) "no nodes added" 0 (Aig.Network.num_ands g)

let test_strash () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g b a in
  Alcotest.(check int) "commutative hash" x y;
  Alcotest.(check int) "one node" 1 (Aig.Network.num_ands g);
  let z = Aig.Network.add_and g (Aig.Lit.neg a) b in
  Alcotest.(check bool) "different polarity differs" true (x <> z);
  Alcotest.(check int) "two nodes" 2 (Aig.Network.num_ands g)

let test_derived_gates () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let xor_ = Aig.Network.add_xor g a b in
  let or_ = Aig.Network.add_or g a b in
  Aig.Network.add_po g xor_;
  Aig.Network.add_po g or_;
  let s = Aig.Network.add_pi g in
  Aig.Network.add_po g (Aig.Network.add_mux g s a b);
  let check_fn name po f =
    for m = 0 to 7 do
      let vals = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
      Alcotest.(check bool)
        (Printf.sprintf "%s m=%d" name m)
        (f vals.(0) vals.(1) vals.(2))
        (Sim.Cex.eval_lit g vals (Aig.Network.po g po))
    done
  in
  check_fn "xor" 0 (fun a b _ -> a <> b);
  check_fn "or" 1 (fun a b _ -> a || b);
  check_fn "mux" 2 (fun a b s -> if s then a else b)

let test_levels_fanouts () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g x (Aig.Lit.neg a) in
  Aig.Network.add_po g y;
  let lv = Aig.Network.levels g in
  Alcotest.(check int) "pi level" 0 lv.(Aig.Lit.node a);
  Alcotest.(check int) "x level" 1 lv.(Aig.Lit.node x);
  Alcotest.(check int) "y level" 2 lv.(Aig.Lit.node y);
  Alcotest.(check int) "depth" 2 (Aig.Network.depth g);
  let fo = Aig.Network.fanout_counts g in
  Alcotest.(check int) "a fanouts" 2 fo.(Aig.Lit.node a);
  Alcotest.(check int) "x fanouts" 1 fo.(Aig.Lit.node x);
  Alcotest.(check int) "y fanouts (po)" 1 fo.(Aig.Lit.node y)

let test_level_batches () =
  let g = Util.random_network ~pis:5 ~nodes:60 ~pos:3 42 in
  let batches = Aig.Network.level_batches g in
  let lv = Aig.Network.levels g in
  let count = ref 0 in
  Array.iteri
    (fun l batch ->
      Array.iter
        (fun n ->
          incr count;
          Alcotest.(check int) "level matches" l lv.(n))
        batch)
    batches;
  Alcotest.(check int) "all ANDs covered" (Aig.Network.num_ands g) !count

let test_check_invariants () =
  let g = Util.random_network 7 in
  Alcotest.(check bool) "check ok" true (Aig.Network.check g = Ok ())

let test_copy_independent () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  Aig.Network.add_po g (Aig.Network.add_and g a b);
  let c = Aig.Network.copy g in
  ignore (Aig.Network.add_pi c);
  Alcotest.(check int) "original pis" 2 (Aig.Network.num_pis g);
  Alcotest.(check int) "copy pis" 3 (Aig.Network.num_pis c)

let prop_ids_topological =
  QCheck.Test.make ~name:"fanin ids below node id" ~count:100 Util.arb_seed
    (fun seed ->
      let g = Util.random_network seed in
      let ok = ref true in
      Aig.Network.iter_ands g (fun n ->
          if
            Aig.Lit.node (Aig.Network.fanin0 g n) >= n
            || Aig.Lit.node (Aig.Network.fanin1 g n) >= n
          then ok := false);
      !ok)

let prop_strash_no_duplicates =
  QCheck.Test.make ~name:"no two ANDs share fanins" ~count:50 Util.arb_seed
    (fun seed ->
      let g = Util.random_network ~nodes:80 seed in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      Aig.Network.iter_ands g (fun n ->
          let key = (Aig.Network.fanin0 g n, Aig.Network.fanin1 g n) in
          if Hashtbl.mem seen key then ok := false;
          Hashtbl.replace seen key ());
      !ok)

let () =
  Alcotest.run "network"
    [
      ( "unit",
        [
          Alcotest.test_case "const propagation" `Quick test_const_prop;
          Alcotest.test_case "strash" `Quick test_strash;
          Alcotest.test_case "derived gates" `Quick test_derived_gates;
          Alcotest.test_case "levels/fanouts" `Quick test_levels_fanouts;
          Alcotest.test_case "level batches" `Quick test_level_batches;
          Alcotest.test_case "invariants" `Quick test_check_invariants;
          Alcotest.test_case "copy" `Quick test_copy_independent;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ids_topological; prop_strash_no_duplicates ] );
    ]
