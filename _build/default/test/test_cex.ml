(* Counter-example handling. *)

let test_of_window_pattern () =
  let g = Aig.Network.create () in
  let _a = Aig.Network.add_pi g in
  let b = Aig.Network.add_pi g in
  let _c = Aig.Network.add_pi g in
  let d = Aig.Network.add_pi g in
  (* Window inputs are PIs b (var 0 of the pattern) and d (var 1). *)
  let inputs = [| Aig.Lit.node b; Aig.Lit.node d |] in
  let cex = Sim.Cex.of_window_pattern g ~inputs ~pattern:0b10 in
  Alcotest.(check (list bool)) "assignment" [ false; false; false; true ]
    (Array.to_list cex)

let test_of_window_pattern_rejects_internal () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  Alcotest.check_raises "internal node"
    (Invalid_argument "Cex.of_window_pattern: window input is not a PI")
    (fun () ->
      ignore (Sim.Cex.of_window_pattern g ~inputs:[| Aig.Lit.node x |] ~pattern:1))

let test_distance_one () =
  let cex = [| true; false; true |] in
  let d1 = Sim.Cex.distance_one cex in
  Alcotest.(check int) "three neighbours" 3 (List.length d1);
  List.iteri
    (fun i c ->
      let diff = ref 0 in
      Array.iteri (fun j v -> if v <> cex.(j) then incr diff) c;
      Alcotest.(check int) (Printf.sprintf "neighbour %d hamming" i) 1 !diff)
    d1;
  Alcotest.(check int) "limit" 2 (List.length (Sim.Cex.distance_one ~limit:2 cex))

let test_eval_and_check () =
  let g = Gen.Arith.adder ~bits:2 in
  (* 1 + 3 = 4 = 100 *)
  let cex = [| true; false; true; true |] in
  Alcotest.(check bool) "sum bit0" false (Sim.Cex.check g cex 0);
  Alcotest.(check bool) "sum bit1" false (Sim.Cex.check g cex 1);
  Alcotest.(check bool) "sum bit2" true (Sim.Cex.check g cex 2)

let test_minimize () =
  (* f = (a & b) | (c & d): the all-ones witness must shrink to two set
     bits. *)
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let c = Aig.Network.add_pi g and d = Aig.Network.add_pi g in
  Aig.Network.add_po g
    (Aig.Network.add_or g (Aig.Network.add_and g a b) (Aig.Network.add_and g c d));
  let full = [| true; true; true; true |] in
  let m = Sim.Cex.minimize g full 0 in
  Alcotest.(check bool) "still failing" true (Sim.Cex.check g m 0);
  let set = Array.fold_left (fun acc v -> acc + Bool.to_int v) 0 m in
  Alcotest.(check int) "two essential bits" 2 set;
  Alcotest.check_raises "rejects passing assignment"
    (Invalid_argument "Cex.minimize: not a failing assignment") (fun () ->
      ignore (Sim.Cex.minimize g [| false; false; false; false |] 0))

let prop_minimize_sound =
  QCheck.Test.make ~name:"minimized witness still fails" ~count:40
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:40 ~pos:2 seed in
      (* Find some failing assignment by scanning. *)
      let found = ref None in
      for m = 0 to 63 do
        if !found = None then begin
          let cex = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
          if Sim.Cex.check g cex 0 then found := Some cex
        end
      done;
      match !found with
      | None -> true
      | Some cex ->
          let m = Sim.Cex.minimize g cex 0 in
          Sim.Cex.check g m 0
          && Array.for_all2 (fun a b -> (not a) || b) m cex
          (* only clears bits, never sets *))

let prop_eval_matches_tt =
  QCheck.Test.make ~name:"eval_lit matches global truth table" ~count:30
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:5 ~nodes:40 seed in
      let l = Aig.Network.po g 0 in
      let tt = Util.global_tt g l in
      let ok = ref true in
      for m = 0 to 31 do
        let vals = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
        if Sim.Cex.eval_lit g vals l <> Bv.Tt.eval tt vals then ok := false
      done;
      !ok)

let () =
  Alcotest.run "cex"
    [
      ( "unit",
        [
          Alcotest.test_case "window pattern" `Quick test_of_window_pattern;
          Alcotest.test_case "rejects internal input" `Quick
            test_of_window_pattern_rejects_internal;
          Alcotest.test_case "distance one" `Quick test_distance_one;
          Alcotest.test_case "eval/check" `Quick test_eval_and_check;
          Alcotest.test_case "minimize" `Quick test_minimize;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_eval_matches_tt; prop_minimize_sound ] );
    ]
