(* Shared helpers for the test suite. *)

let eval_outputs g cex =
  Array.map (fun l -> Sim.Cex.eval_lit g cex l) (Aig.Network.pos g)

(* Brute-force functional equivalence of two networks over all input
   assignments; only for small PI counts. *)
let equivalent_brute g1 g2 =
  let n = Aig.Network.num_pis g1 in
  assert (n = Aig.Network.num_pis g2);
  assert (n <= 16);
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    if !ok then begin
      let cex = Array.init n (fun i -> (m lsr i) land 1 = 1) in
      if eval_outputs g1 cex <> eval_outputs g2 cex then ok := false
    end
  done;
  !ok

(* All-outputs-false check by brute force (for miters). *)
let solved_brute g =
  let n = Aig.Network.num_pis g in
  assert (n <= 16);
  let ok = ref true in
  for m = 0 to (1 lsl n) - 1 do
    if !ok then begin
      let cex = Array.init n (fun i -> (m lsr i) land 1 = 1) in
      if Array.exists Fun.id (eval_outputs g cex) then ok := false
    end
  done;
  !ok

(* A deterministic random AIG from a seed. *)
let random_network ?(pis = 6) ?(nodes = 40) ?(pos = 4) seed =
  Gen.Control.random_logic ~pis ~nodes ~pos ~seed:(Int64.of_int seed)

let arb_seed = QCheck.int_range 0 1_000_000

(* Global truth table of a literal over all PIs of a small network. *)
let global_tt g l =
  let n = Aig.Network.num_pis g in
  assert (n <= 16);
  Bv.Tt.of_fun ~nvars:n (fun vals -> Sim.Cex.eval_lit g vals l)

let with_pool f =
  let pool = Par.Pool.create ~num_domains:3 () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) (fun () -> f pool)
