(* Partial simulator: agreement with reference evaluation, determinism,
   embedded patterns, parallel consistency. *)

let test_matches_reference () =
  Util.with_pool (fun pool ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 5 in
      let rng = Sim.Rng.create ~seed:1L in
      let sigs = Sim.Psim.run g ~nwords:2 ~rng ~pool ~embed:[] in
      (* Check 20 random patterns against Cex.eval_lit. *)
      for p = 0 to 19 do
        let cex =
          Array.init (Aig.Network.num_pis g) (fun i ->
              Sim.Psim.value sigs (Aig.Network.pi g i) p)
        in
        Aig.Network.iter_ands g (fun n ->
            let expect = Sim.Cex.eval_lit g cex (Aig.Lit.make n false) in
            if Sim.Psim.value sigs n p <> expect then
              Alcotest.failf "node %d pattern %d mismatch" n p)
      done)

let test_deterministic () =
  Util.with_pool (fun pool ->
      let g = Util.random_network ~pis:8 ~nodes:100 11 in
      let run () =
        let rng = Sim.Rng.create ~seed:77L in
        let sigs = Sim.Psim.run g ~nwords:4 ~rng ~pool ~embed:[] in
        List.init (Aig.Network.num_nodes g) (fun n -> Sim.Psim.class_key sigs n)
      in
      Alcotest.(check bool) "same keys" true (run () = run ()))

let test_embed () =
  Util.with_pool (fun pool ->
      let g = Gen.Arith.adder ~bits:2 in
      let rng = Sim.Rng.create ~seed:3L in
      (* Embed the all-ones assignment at slot 0 and all-zeros at slot 1. *)
      let e1 = Array.make 4 true and e0 = Array.make 4 false in
      let sigs = Sim.Psim.run g ~nwords:1 ~rng ~pool ~embed:[ e1; e0 ] in
      (* 3 + 3 = 6 = 110: sum bits (LSB first) 0,1,1 *)
      let po_val p i =
        let l = Aig.Network.po g i in
        Sim.Psim.value sigs (Aig.Lit.node l) p <> Aig.Lit.is_compl l
      in
      Alcotest.(check bool) "s0@ones" false (po_val 0 0);
      Alcotest.(check bool) "s1@ones" true (po_val 0 1);
      Alcotest.(check bool) "carry@ones" true (po_val 0 2);
      Alcotest.(check bool) "s0@zeros" false (po_val 1 0);
      Alcotest.(check bool) "carry@zeros" false (po_val 1 2))

let test_const_row () =
  Util.with_pool (fun pool ->
      let g = Util.random_network 2 in
      let rng = Sim.Rng.create ~seed:5L in
      let sigs = Sim.Psim.run g ~nwords:2 ~rng ~pool ~embed:[] in
      Alcotest.(check bool) "const node all-zero" true
        (Sim.Psim.compare_const sigs 0 = `Equal))

let test_compare_nodes () =
  Util.with_pool (fun pool ->
      let g = Aig.Network.create () in
      let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
      let x = Aig.Network.add_and g a b in
      (* A functionally identical copy that escapes strashing. *)
      let t = Aig.Network.add_and g a (Aig.Lit.neg b) in
      let y = Aig.Network.add_and g (Aig.Lit.neg t) a in
      Aig.Network.add_po g x;
      Aig.Network.add_po g y;
      let rng = Sim.Rng.create ~seed:9L in
      let sigs = Sim.Psim.run g ~nwords:4 ~rng ~pool ~embed:[] in
      Alcotest.(check bool) "x equals y" true
        (Sim.Psim.compare_nodes sigs (Aig.Lit.node x) (Aig.Lit.node y) = `Equal);
      Alcotest.(check bool) "same class key" true
        (Sim.Psim.class_key sigs (Aig.Lit.node x)
        = Sim.Psim.class_key sigs (Aig.Lit.node y)))

let prop_parallel_independent =
  QCheck.Test.make ~name:"results independent of domain count" ~count:20
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:7 ~nodes:80 seed in
      let run nd =
        let pool = Par.Pool.create ~num_domains:nd () in
        Fun.protect
          ~finally:(fun () -> Par.Pool.shutdown pool)
          (fun () ->
            let rng = Sim.Rng.create ~seed:42L in
            let sigs = Sim.Psim.run g ~nwords:2 ~rng ~pool ~embed:[] in
            List.init (Aig.Network.num_nodes g) (fun n ->
                Sim.Psim.word sigs n 0))
      in
      run 1 = run 4)

let test_rng_known () =
  (* SplitMix64 reference values for seed 0 (from the published reference
     implementation). *)
  let r = Sim.Rng.create ~seed:0L in
  Alcotest.(check int64) "v1" 0xe220a8397b1dcdafL (Sim.Rng.next64 r);
  Alcotest.(check int64) "v2" 0x6e789e6aa1b965f4L (Sim.Rng.next64 r);
  Alcotest.(check int64) "v3" 0x06c45d188009454fL (Sim.Rng.next64 r)

let () =
  Alcotest.run "psim"
    [
      ( "unit",
        [
          Alcotest.test_case "matches reference" `Quick test_matches_reference;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "embed patterns" `Quick test_embed;
          Alcotest.test_case "const row" `Quick test_const_row;
          Alcotest.test_case "compare nodes" `Quick test_compare_nodes;
          Alcotest.test_case "rng known values" `Quick test_rng_known;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_parallel_independent ]);
    ]
