(* The full simulation-based CEC engine: P/G/L flow, reductions, CEXs,
   phase truncation (Fig. 7 support) and SAT fallback integration. *)

let scaled = Simsweep.Config.scaled

let run ?config ?stop_after miter =
  Util.with_pool (fun pool -> Simsweep.Engine.run ?config ?stop_after ~pool miter)

let test_proves_small_miters () =
  List.iter
    (fun (name, g) ->
      let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
      let r = run m in
      (match r.Simsweep.Engine.outcome with
      | Simsweep.Engine.Proved -> ()
      | _ -> Alcotest.failf "%s: expected proved" name);
      Alcotest.(check (float 0.01)) (name ^ " reduction") 100.
        (Simsweep.Engine.reduction_percent r))
    [
      ("adder", Gen.Arith.adder ~bits:6);
      ("multiplier", Gen.Arith.multiplier ~bits:5);
      ("voter", Gen.Control.voter ~n:9);
      ("regfile", Gen.Control.regfile ~regs:4 ~width:3);
    ]

let test_disproves_with_valid_cex () =
  let g = Gen.Arith.multiplier ~bits:5 in
  let bad = Opt.Resyn.light g in
  Aig.Network.set_po bad 4 (Aig.Lit.neg (Aig.Network.po bad 4));
  let m = Aig.Miter.build g bad in
  let r = run m in
  match r.Simsweep.Engine.outcome with
  | Simsweep.Engine.Disproved (cex, po) ->
      Alcotest.(check bool) "cex sets the miter PO" true (Sim.Cex.check m cex po)
  | _ -> Alcotest.fail "expected disproof"

let test_g_and_l_phases_work () =
  (* Force the flow past the P phase with small thresholds: PO supports
     exceed k_cap_p, so internal sweeping must do the proving. *)
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg =
    {
      scaled with
      Simsweep.Config.k_cap_p = 8;
      k_p = 6;
      k_g = 8;
      max_local_phases = 6;
    }
  in
  let r = run ~config:cfg m in
  let st = r.Simsweep.Engine.stats in
  Alcotest.(check bool) "internal pairs proved" true
    (st.Simsweep.Stats.pairs_proved_global + st.Simsweep.Stats.pairs_proved_local > 0);
  (* Even if not fully proved, the miter must have shrunk substantially. *)
  Alcotest.(check bool) "substantial reduction" true
    (Simsweep.Engine.reduction_percent r > 30.)

let test_stop_after () =
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg = { scaled with Simsweep.Config.k_cap_p = 8; k_p = 6; k_g = 8 } in
  let rp = run ~config:cfg ~stop_after:`P m in
  let rg = run ~config:cfg ~stop_after:`G m in
  let rl = run ~config:cfg m in
  let size r = r.Simsweep.Engine.reduced_size in
  Alcotest.(check bool) "G reduces at least as much as P" true (size rg <= size rp);
  Alcotest.(check bool) "L reduces at least as much as G" true (size rl <= size rg);
  Alcotest.(check bool) "P did not run G" true
    (rp.Simsweep.Engine.stats.Simsweep.Stats.time_g = 0.)

let test_disproof_in_g_phase_refines () =
  (* Random networks disagree on most outputs: the engine must disprove
     them (P phase CEX). *)
  let g1 = Util.random_network ~pis:5 ~nodes:40 ~pos:3 1 in
  let g2 = Util.random_network ~pis:5 ~nodes:40 ~pos:3 2 in
  if not (Util.equivalent_brute g1 g2) then begin
    let m = Aig.Miter.build g1 g2 in
    let r = run m in
    match r.Simsweep.Engine.outcome with
    | Simsweep.Engine.Disproved (cex, po) ->
        Alcotest.(check bool) "valid cex" true (Sim.Cex.check m cex po)
    | _ -> Alcotest.fail "expected disproof"
  end

let test_fallback_combined () =
  (* A deep sqrt-style miter with small thresholds leaves work for SAT. *)
  let g = Gen.Arith.sqrt ~bits:12 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let cfg = { scaled with Simsweep.Config.k_cap_p = 6; k_p = 4; k_g = 6; max_local_phases = 1 } in
  Util.with_pool (fun pool ->
      let c = Simsweep.Engine.check_with_fallback ~config:cfg ~pool m in
      Alcotest.(check bool) "finally proved" true
        (c.Simsweep.Engine.final = Simsweep.Engine.Proved))

let test_fallback_with_ec_transfer () =
  let g = Gen.Arith.multiplier ~bits:5 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg = { scaled with Simsweep.Config.k_cap_p = 6; k_p = 4; k_g = 6; max_local_phases = 1 } in
  Util.with_pool (fun pool ->
      let c =
        Simsweep.Engine.check_with_fallback ~config:cfg ~transfer_classes:true
          ~pool m
      in
      Alcotest.(check bool) "proved with transfer" true
        (c.Simsweep.Engine.final = Simsweep.Engine.Proved))

let test_adaptive_passes () =
  (* §V extension: disabling ineffective passes must not change the
     verdict. *)
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg =
    {
      scaled with
      Simsweep.Config.k_cap_p = 8;
      k_p = 6;
      k_g = 8;
      adaptive_passes = true;
    }
  in
  let r = run ~config:cfg m in
  Alcotest.(check bool) "still proved" true
    (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved)

let test_rewrite_between_phases () =
  (* §V extension: interleaved rewriting keeps the flow sound. *)
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg =
    {
      scaled with
      Simsweep.Config.k_cap_p = 8;
      k_p = 6;
      k_g = 8;
      rewrite_between_phases = true;
    }
  in
  let r = run ~config:cfg m in
  Alcotest.(check bool) "proved with interleaved rewriting" true
    (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved)

let prop_rewrite_between_phases_sound =
  QCheck.Test.make ~name:"interleaved rewriting preserves the verdict"
    ~count:10 Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 seed in
          let g2 =
            if seed mod 2 = 0 then Opt.Xorflip.run g1
            else Util.random_network ~pis:6 ~nodes:40 ~pos:3 (seed + 5)
          in
          let m = Aig.Miter.build g1 g2 in
          let cfg =
            {
              scaled with
              Simsweep.Config.k_cap_p = 4;
              k_p = 3;
              k_g = 5;
              rewrite_between_phases = true;
              max_local_phases = 3;
            }
          in
          let expect = Util.equivalent_brute g1 g2 in
          let r = Simsweep.Engine.run ~config:cfg ~pool m in
          match r.Simsweep.Engine.outcome with
          | Simsweep.Engine.Proved -> expect
          | Simsweep.Engine.Disproved (cex, po) ->
              (not expect) && Sim.Cex.check m cex po
          | Simsweep.Engine.Undecided ->
              Util.solved_brute r.Simsweep.Engine.reduced = expect))

let test_time_limit () =
  (* A zero budget stops the G/L work immediately; the flow must still be
     sound (Undecided with a partially-reduced miter, or solved by P). *)
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg =
    {
      scaled with
      Simsweep.Config.k_cap_p = 8;
      k_p = 6;
      k_g = 8;
      time_limit = Some 0.;
    }
  in
  let r = run ~config:cfg m in
  (match r.Simsweep.Engine.outcome with
  | Simsweep.Engine.Undecided | Simsweep.Engine.Proved -> ()
  | Simsweep.Engine.Disproved _ -> Alcotest.fail "miter is equivalent");
  Alcotest.(check bool) "no local phases ran" true
    (r.Simsweep.Engine.stats.Simsweep.Stats.local_phases = 0);
  (* And a generous budget behaves like no budget. *)
  let cfg2 = { cfg with Simsweep.Config.time_limit = Some 3600. } in
  let r2 = run ~config:cfg2 m in
  Alcotest.(check bool) "proved within generous budget" true
    (r2.Simsweep.Engine.outcome = Simsweep.Engine.Proved)

let test_stats_timers () =
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let cfg = { scaled with Simsweep.Config.k_cap_p = 8; k_p = 6; k_g = 8 } in
  let r = run ~config:cfg m in
  let p, gq, l = Simsweep.Stats.breakdown r.Simsweep.Engine.stats in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1. (p +. gq +. l);
  Alcotest.(check bool) "total positive" true
    (Simsweep.Stats.total_time r.Simsweep.Engine.stats > 0.)

let prop_engine_agrees_with_brute =
  QCheck.Test.make ~name:"engine+fallback agrees with brute force" ~count:20
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:6 ~nodes:40 ~pos:3 seed in
          let g2 =
            if seed mod 2 = 0 then Opt.Resyn.light g1
            else Util.random_network ~pis:6 ~nodes:40 ~pos:3 (seed + 13)
          in
          let m = Aig.Miter.build g1 g2 in
          let expect = Util.equivalent_brute g1 g2 in
          let c = Simsweep.Engine.check_with_fallback ~pool m in
          match c.Simsweep.Engine.final with
          | Simsweep.Engine.Proved -> expect
          | Simsweep.Engine.Disproved (cex, po) ->
              (not expect) && Sim.Cex.check m cex po
          | Simsweep.Engine.Undecided -> false))

let prop_reduction_sound =
  QCheck.Test.make ~name:"reduced miter is equi-satisfiable" ~count:15
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g1 = Util.random_network ~pis:6 ~nodes:50 ~pos:3 seed in
          let g2 = Opt.Xorflip.run g1 in
          let m = Aig.Miter.build g1 g2 in
          let cfg =
            { scaled with Simsweep.Config.k_cap_p = 4; k_p = 3; k_g = 5; max_local_phases = 1 }
          in
          let r = Simsweep.Engine.run ~config:cfg ~pool m in
          match r.Simsweep.Engine.outcome with
          | Simsweep.Engine.Proved -> Util.solved_brute m
          | Simsweep.Engine.Disproved _ -> not (Util.solved_brute m)
          | Simsweep.Engine.Undecided ->
              (* The reduced miter must be solved iff the original is. *)
              Util.solved_brute m = Util.solved_brute r.Simsweep.Engine.reduced))

let () =
  Alcotest.run "engine"
    [
      ( "unit",
        [
          Alcotest.test_case "proves small miters" `Quick test_proves_small_miters;
          Alcotest.test_case "disproves with cex" `Quick test_disproves_with_valid_cex;
          Alcotest.test_case "G/L phases" `Quick test_g_and_l_phases_work;
          Alcotest.test_case "stop_after" `Quick test_stop_after;
          Alcotest.test_case "disproof via refinement" `Quick test_disproof_in_g_phase_refines;
          Alcotest.test_case "fallback" `Quick test_fallback_combined;
          Alcotest.test_case "fallback with EC transfer" `Quick test_fallback_with_ec_transfer;
          Alcotest.test_case "stats timers" `Quick test_stats_timers;
          Alcotest.test_case "adaptive passes" `Quick test_adaptive_passes;
          Alcotest.test_case "rewrite between phases" `Quick test_rewrite_between_phases;
          Alcotest.test_case "time limit" `Quick test_time_limit;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engine_agrees_with_brute;
            prop_reduction_sound;
            prop_rewrite_between_phases_sound;
          ] );
    ]
