(* Truth tables: projection tables (checked against the paper's own k=3
   example), evaluation, cofactors, dependence and the 16-bit packing used
   by the NPN rewriting library. *)

let test_paper_projections () =
  (* Paper §II-A: for k = 3 the projection tables of f0, f1, f2 are
     10101010, 11001100, 11110000. *)
  Alcotest.(check string) "f0" "10101010" (Bv.Tt.to_string (Bv.Tt.proj ~nvars:3 0));
  Alcotest.(check string) "f1" "11001100" (Bv.Tt.to_string (Bv.Tt.proj ~nvars:3 1));
  Alcotest.(check string) "f2" "11110000" (Bv.Tt.to_string (Bv.Tt.proj ~nvars:3 2))

let test_paper_xy'_example () =
  (* Paper §III-B1: f = xy' + xy'z has truth table 00100010 under input
     order (x,y,z) and 01000100 under (y,x,z); xy' under (x,y) is 0010. *)
  let x = Bv.Tt.proj ~nvars:3 0
  and y = Bv.Tt.proj ~nvars:3 1
  and z = Bv.Tt.proj ~nvars:3 2 in
  let f = Bv.Tt.bor (Bv.Tt.band x (Bv.Tt.bnot y)) (Bv.Tt.band (Bv.Tt.band x (Bv.Tt.bnot y)) z) in
  Alcotest.(check string) "xyz order" "00100010" (Bv.Tt.to_string f);
  (* Swap the roles of the first two inputs. *)
  let x' = Bv.Tt.proj ~nvars:3 1 and y' = Bv.Tt.proj ~nvars:3 0 in
  let g = Bv.Tt.bor (Bv.Tt.band x' (Bv.Tt.bnot y')) (Bv.Tt.band (Bv.Tt.band x' (Bv.Tt.bnot y')) z) in
  Alcotest.(check string) "yxz order" "01000100" (Bv.Tt.to_string g);
  let x2 = Bv.Tt.proj ~nvars:2 0 and y2 = Bv.Tt.proj ~nvars:2 1 in
  Alcotest.(check string) "xy' 2 vars" "0010"
    (Bv.Tt.to_string (Bv.Tt.band x2 (Bv.Tt.bnot y2)))

let test_proj_word_large () =
  (* proj_word must agree with the materialised projection table. *)
  List.iter
    (fun nvars ->
      for i = 0 to nvars - 1 do
        let tt = Bv.Tt.proj ~nvars i in
        let nw = Bv.Bits.num_words tt.Bv.Tt.bits in
        for w = 0 to nw - 1 do
          let a = Bv.Bits.get_word tt.Bv.Tt.bits w in
          let b = Bv.Tt.proj_word ~var:i w in
          (* The last word of the materialised table is tail-masked. *)
          let b =
            if nvars >= 6 then b
            else Int64.logand b (Bv.Bits.get_word (Bv.Tt.const1 ~nvars).Bv.Tt.bits 0)
          in
          if not (Int64.equal a b) then
            Alcotest.failf "proj_word mismatch nvars=%d var=%d word=%d" nvars i w
        done
      done)
    [ 3; 6; 7; 9 ]

let test_eval_of_fun () =
  let maj = Bv.Tt.of_fun ~nvars:3 (fun v -> Bool.to_int v.(0) + Bool.to_int v.(1) + Bool.to_int v.(2) >= 2) in
  Alcotest.(check string) "majority" "11101000" (Bv.Tt.to_string maj);
  Alcotest.(check bool) "eval 110" true (Bv.Tt.eval maj [| false; true; true |]);
  Alcotest.(check bool) "eval 100" false (Bv.Tt.eval maj [| false; false; true |])

let test_cofactor_depends () =
  let x = Bv.Tt.proj ~nvars:3 0 and y = Bv.Tt.proj ~nvars:3 1 in
  let f = Bv.Tt.band x y in
  Alcotest.(check bool) "depends x" true (Bv.Tt.depends_on f 0);
  Alcotest.(check bool) "depends z" false (Bv.Tt.depends_on f 2);
  Alcotest.(check bool) "cofactor x=1 is y" true
    (Bv.Tt.equal (Bv.Tt.cofactor f 0 true) y);
  Alcotest.(check bool) "cofactor x=0 is 0" true
    (Bv.Tt.is_const0 (Bv.Tt.cofactor f 0 false))

let test_uint16 () =
  for _ = 1 to 100 do
    let x = Random.int 65536 in
    Alcotest.(check int) "roundtrip" x (Bv.Tt.to_uint16 (Bv.Tt.of_uint16 x))
  done;
  (* Widening smaller arities keeps the function. *)
  let f2 = Bv.Tt.band (Bv.Tt.proj ~nvars:2 0) (Bv.Tt.proj ~nvars:2 1) in
  let w = Bv.Tt.to_uint16 f2 in
  let f4 = Bv.Tt.of_uint16 w in
  Alcotest.(check bool) "widened agrees" true
    (Bv.Tt.equal f4 (Bv.Tt.band (Bv.Tt.proj ~nvars:4 0) (Bv.Tt.proj ~nvars:4 1)))

let prop_shannon =
  QCheck.Test.make ~name:"shannon expansion" ~count:200
    QCheck.(pair (int_bound 65535) (int_bound 3))
    (fun (x, v) ->
      let f = Bv.Tt.of_uint16 x in
      let pv = Bv.Tt.proj ~nvars:4 v in
      let expansion =
        Bv.Tt.bor
          (Bv.Tt.band pv (Bv.Tt.cofactor f v true))
          (Bv.Tt.band (Bv.Tt.bnot pv) (Bv.Tt.cofactor f v false))
      in
      Bv.Tt.equal f expansion)

let prop_count_ones =
  QCheck.Test.make ~name:"count_ones equals eval sum" ~count:100
    (QCheck.int_bound 65535) (fun x ->
      let f = Bv.Tt.of_uint16 x in
      let n = ref 0 in
      for m = 0 to 15 do
        if Bv.Tt.eval f (Array.init 4 (fun i -> (m lsr i) land 1 = 1)) then incr n
      done;
      Bv.Tt.count_ones f = !n)

let () =
  Alcotest.run "tt"
    [
      ( "unit",
        [
          Alcotest.test_case "paper projections" `Quick test_paper_projections;
          Alcotest.test_case "paper xy' example" `Quick test_paper_xy'_example;
          Alcotest.test_case "proj_word" `Quick test_proj_word_large;
          Alcotest.test_case "eval/of_fun" `Quick test_eval_of_fun;
          Alcotest.test_case "cofactor/depends" `Quick test_cofactor_depends;
          Alcotest.test_case "uint16" `Quick test_uint16;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_shannon; prop_count_ones ] );
    ]
