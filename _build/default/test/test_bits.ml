(* Unit and property tests for Bv.Bits: the packed bit-vectors every
   simulator in the repo is built on. *)

let bits_gen =
  (* A length and a random vector of that length, as (len, bool list). *)
  QCheck.Gen.(
    sized_size (int_range 1 300) (fun len ->
        map (fun bools -> (len, bools)) (list_size (return len) bool)))

let arb_bits =
  QCheck.make
    ~print:(fun (len, bs) ->
      Printf.sprintf "len=%d %s" len
        (String.concat "" (List.map (fun b -> if b then "1" else "0") bs)))
    bits_gen

let of_bools (len, bs) =
  let v = Bv.Bits.create ~len false in
  List.iteri (fun i b -> Bv.Bits.set v i b) bs;
  v

let test_create_get () =
  let v = Bv.Bits.create ~len:100 false in
  Alcotest.(check int) "length" 100 (Bv.Bits.length v);
  Alcotest.(check bool) "zero" true (Bv.Bits.is_zero v);
  let w = Bv.Bits.create ~len:100 true in
  Alcotest.(check bool) "ones" true (Bv.Bits.is_ones w);
  Alcotest.(check int) "popcount" 100 (Bv.Bits.popcount w);
  Bv.Bits.set v 63 true;
  Bv.Bits.set v 64 true;
  Alcotest.(check bool) "bit63" true (Bv.Bits.get v 63);
  Alcotest.(check bool) "bit64" true (Bv.Bits.get v 64);
  Alcotest.(check bool) "bit65" false (Bv.Bits.get v 65);
  Alcotest.(check int) "popcount2" 2 (Bv.Bits.popcount v)

let test_bounds () =
  let v = Bv.Bits.create ~len:10 false in
  Alcotest.check_raises "get oob" (Invalid_argument "Bits.get: index out of range")
    (fun () -> ignore (Bv.Bits.get v 10));
  Alcotest.check_raises "set oob" (Invalid_argument "Bits.set: index out of range")
    (fun () -> Bv.Bits.set v (-1) true)

let test_string_roundtrip () =
  let s = "01101001" in
  let v = Bv.Bits.of_string s in
  Alcotest.(check string) "roundtrip" s (Bv.Bits.to_string v);
  (* Paper convention: leftmost char is the highest pattern index. *)
  Alcotest.(check bool) "bit0" true (Bv.Bits.get v 0);
  Alcotest.(check bool) "bit7" false (Bv.Bits.get v 7)

let test_tail_mask () =
  (* bnot must not set bits beyond the length. *)
  let v = Bv.Bits.create ~len:70 false in
  let n = Bv.Bits.bnot v in
  Alcotest.(check bool) "is_ones" true (Bv.Bits.is_ones n);
  Alcotest.(check int) "popcount" 70 (Bv.Bits.popcount n);
  Alcotest.(check bool) "equal create" true (Bv.Bits.equal n (Bv.Bits.create ~len:70 true))

let test_first_diff () =
  let a = Bv.Bits.create ~len:200 false in
  let b = Bv.Bits.create ~len:200 false in
  Alcotest.(check (option int)) "same" None (Bv.Bits.first_diff a b);
  Bv.Bits.set b 131 true;
  Alcotest.(check (option int)) "diff" (Some 131) (Bv.Bits.first_diff a b);
  Bv.Bits.set b 7 true;
  Alcotest.(check (option int)) "first" (Some 7) (Bv.Bits.first_diff a b)

let naive_ctz64 x =
  (* Reference implementation: scan bits from the bottom. *)
  if Int64.equal x 0L then 64
  else begin
    let i = ref 0 in
    while Int64.equal (Int64.logand (Int64.shift_right_logical x !i) 1L) 0L do
      incr i
    done;
    !i
  end

let test_ctz64_edges () =
  Alcotest.(check int) "zero" 64 (Bv.Bits.ctz64 0L);
  Alcotest.(check int) "all ones" 0 (Bv.Bits.ctz64 (-1L));
  Alcotest.(check int) "one" 0 (Bv.Bits.ctz64 1L);
  Alcotest.(check int) "msb" 63 (Bv.Bits.ctz64 Int64.min_int);
  for i = 0 to 63 do
    let single = Int64.shift_left 1L i in
    Alcotest.(check int) (Printf.sprintf "bit %d" i) i (Bv.Bits.ctz64 single);
    (* All bits from i upward set: ctz must still be i. *)
    Alcotest.(check int)
      (Printf.sprintf "suffix %d" i)
      i
      (Bv.Bits.ctz64 (Int64.mul (-1L) single))
  done

let prop_ctz64_matches_naive =
  QCheck.Test.make ~name:"ctz64 matches naive bit scan" ~count:500 QCheck.int64
    (fun x -> Bv.Bits.ctz64 x = naive_ctz64 x)

let test_equal_mod_compl () =
  let a = Bv.Bits.of_string "1010" in
  Alcotest.(check bool) "equal" true (Bv.Bits.equal_mod_compl a a = `Equal);
  Alcotest.(check bool) "compl" true
    (Bv.Bits.equal_mod_compl a (Bv.Bits.bnot a) = `Compl);
  Alcotest.(check bool) "diff" true
    (Bv.Bits.equal_mod_compl a (Bv.Bits.of_string "1011") = `Diff)

let prop_not_involution =
  QCheck.Test.make ~name:"bnot involution" ~count:200 arb_bits (fun input ->
      let v = of_bools input in
      Bv.Bits.equal v (Bv.Bits.bnot (Bv.Bits.bnot v)))

let prop_demorgan =
  QCheck.Test.make ~name:"de morgan" ~count:200
    (QCheck.pair arb_bits arb_bits)
    (fun ((l1, b1), (_, b2)) ->
      (* Force equal lengths by reusing l1 and padding/truncating b2. *)
      let b2 =
        let rec fit n = function
          | _ when n = 0 -> []
          | [] -> false :: fit (n - 1) []
          | x :: rest -> x :: fit (n - 1) rest
        in
        fit l1 b2
      in
      let a = of_bools (l1, b1) and b = of_bools (l1, b2) in
      Bv.Bits.equal
        (Bv.Bits.bnot (Bv.Bits.band a b))
        (Bv.Bits.bor (Bv.Bits.bnot a) (Bv.Bits.bnot b)))

let prop_popcount_xor =
  QCheck.Test.make ~name:"popcount of self-xor is 0" ~count:200 arb_bits
    (fun input ->
      let v = of_bools input in
      Bv.Bits.popcount (Bv.Bits.bxor v v) = 0)

let prop_get_matches_list =
  QCheck.Test.make ~name:"get matches source bools" ~count:200 arb_bits
    (fun (len, bs) ->
      let v = of_bools (len, bs) in
      List.for_all2
        (fun i b -> Bv.Bits.get v i = b)
        (List.init len Fun.id) bs)

let prop_and_maybe_not =
  QCheck.Test.make ~name:"and_maybe_not covers all four polarities" ~count:100
    (QCheck.pair arb_bits QCheck.(pair bool bool))
    (fun ((len, bs), (c0, c1)) ->
      let a = of_bools (len, bs) in
      let b = Bv.Bits.bnot a in
      let r = Bv.Bits.and_maybe_not ~c0 a ~c1 b in
      let expect =
        Bv.Bits.band
          (if c0 then Bv.Bits.bnot a else a)
          (if c1 then Bv.Bits.bnot b else b)
      in
      Bv.Bits.equal r expect)

let prop_first_one =
  QCheck.Test.make ~name:"first_one finds lowest set bit" ~count:200 arb_bits
    (fun (len, bs) ->
      let v = of_bools (len, bs) in
      let expect =
        let rec go i = function
          | [] -> None
          | true :: _ -> Some i
          | false :: rest -> go (i + 1) rest
        in
        go 0 bs
      in
      Bv.Bits.first_one v = expect)

let () =
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "create/get/set" `Quick test_create_get;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "tail mask" `Quick test_tail_mask;
          Alcotest.test_case "first_diff" `Quick test_first_diff;
          Alcotest.test_case "ctz64 edges" `Quick test_ctz64_edges;
          Alcotest.test_case "equal_mod_compl" `Quick test_equal_mod_compl;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_not_involution;
            prop_demorgan;
            prop_popcount_xor;
            prop_get_matches_list;
            prop_and_maybe_not;
            prop_first_one;
            prop_ctz64_matches_naive;
          ] );
    ]
