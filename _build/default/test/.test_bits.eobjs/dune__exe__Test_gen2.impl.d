test/test_gen2.ml: Aig Alcotest Array Gen List Opt Printf QCheck QCheck_alcotest Random Sat Sim Simsweep Util
