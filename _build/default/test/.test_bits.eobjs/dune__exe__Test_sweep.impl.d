test/test_sweep.ml: Aig Alcotest Array Gen List Opt Printf QCheck QCheck_alcotest Sat Sim Util
