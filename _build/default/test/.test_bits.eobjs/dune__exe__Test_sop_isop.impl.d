test/test_sop_isop.ml: Alcotest Array Bv List QCheck QCheck_alcotest
