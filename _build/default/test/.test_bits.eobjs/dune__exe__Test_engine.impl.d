test/test_engine.ml: Aig Alcotest Gen List Opt QCheck QCheck_alcotest Sim Simsweep Util
