test/test_exhaustive.ml: Aig Alcotest Array Bv Fun Gen List Opt Printf QCheck QCheck_alcotest Sim Simsweep Util
