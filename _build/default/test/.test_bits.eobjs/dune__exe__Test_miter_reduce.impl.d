test/test_miter_reduce.ml: Aig Alcotest Array Bv Int64 List Printf QCheck QCheck_alcotest Sim Util
