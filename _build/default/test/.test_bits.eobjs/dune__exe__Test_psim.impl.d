test/test_psim.ml: Aig Alcotest Array Fun Gen List Par QCheck QCheck_alcotest Sim Util
