test/test_portfolio.mli:
