test/test_gen.ml: Aig Alcotest Array Bool Float Gen Int64 List Printf QCheck QCheck_alcotest Random Sim Util
