test/test_misc.ml: Aig Alcotest Array Gen List Printf Simsweep Str String Util
