test/test_gen2.mli:
