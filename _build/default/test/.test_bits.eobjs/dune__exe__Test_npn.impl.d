test/test_npn.ml: Alcotest Bv Hashtbl List QCheck QCheck_alcotest
