test/test_eclass.mli:
