test/test_network.ml: Aig Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Sim Util
