test/test_telemetry.ml: Aig Alcotest Array Float Gen Opt Par Printf Sim Simsweep Util
