test/test_wmerge.mli:
