test/test_aiger.mli:
