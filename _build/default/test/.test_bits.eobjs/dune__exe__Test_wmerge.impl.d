test/test_wmerge.ml: Aig Alcotest Array Fun Int64 List QCheck QCheck_alcotest Sim Simsweep Util
