test/util.ml: Aig Array Bv Fun Gen Int64 Par QCheck Sim
