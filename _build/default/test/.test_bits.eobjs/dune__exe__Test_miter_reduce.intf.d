test/test_miter_reduce.mli:
