test/test_partition.ml: Aig Alcotest Array Fun Gen Int64 List Opt QCheck QCheck_alcotest Sim Simsweep Util
