test/test_opt.ml: Aig Alcotest Array Bv Gen List Opt QCheck QCheck_alcotest Util
