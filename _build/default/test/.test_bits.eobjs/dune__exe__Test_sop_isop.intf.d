test/test_sop_isop.mli:
