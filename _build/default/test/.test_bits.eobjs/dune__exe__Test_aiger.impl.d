test/test_aiger.ml: Aig Alcotest Filename Fun Gen List QCheck QCheck_alcotest Sim String Sys Util
