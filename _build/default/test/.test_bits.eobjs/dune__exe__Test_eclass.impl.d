test/test_eclass.ml: Aig Alcotest Array Hashtbl List QCheck QCheck_alcotest Sim Util
