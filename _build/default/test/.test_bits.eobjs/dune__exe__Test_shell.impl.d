test/test_shell.ml: Alcotest Filename Fun List Printf Shell String Sys Util
