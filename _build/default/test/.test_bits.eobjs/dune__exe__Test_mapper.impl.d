test/test_mapper.ml: Aig Alcotest Array Bv Cuts Gen Hashtbl List Lutmap QCheck QCheck_alcotest Sim Simsweep Util
