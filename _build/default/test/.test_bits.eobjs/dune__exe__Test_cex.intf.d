test/test_cex.mli:
