test/test_support_cone.mli:
