test/test_dimacs.mli:
