test/test_dimacs.ml: Aig Alcotest Array Fun Gen List Opt QCheck QCheck_alcotest Sat Sim Util
