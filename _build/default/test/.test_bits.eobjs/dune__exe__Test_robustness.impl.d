test/test_robustness.ml: Aig Alcotest Array Bytes Char Fun Gen Int64 List Opt Par QCheck QCheck_alcotest Sat Shell Sim Simsweep String Util
