test/test_certificate.ml: Aig Alcotest Gen List Opt QCheck QCheck_alcotest Simsweep Util
