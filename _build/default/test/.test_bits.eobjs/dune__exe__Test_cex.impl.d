test/test_cex.ml: Aig Alcotest Array Bool Bv Gen List Printf QCheck QCheck_alcotest Sim Util
