test/test_pool.ml: Alcotest Array Atomic Bytes Fun Gc List Par Printf QCheck QCheck_alcotest Sys Unix Weak
