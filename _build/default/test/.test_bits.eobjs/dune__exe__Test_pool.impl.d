test/test_pool.ml: Alcotest Array Atomic Fun Par QCheck QCheck_alcotest
