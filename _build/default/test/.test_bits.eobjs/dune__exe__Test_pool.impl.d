test/test_pool.ml: Alcotest Array Atomic Fun List Par QCheck QCheck_alcotest
