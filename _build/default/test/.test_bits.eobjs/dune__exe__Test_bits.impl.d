test/test_bits.ml: Alcotest Bv Fun Int64 List Printf QCheck QCheck_alcotest String
