test/test_bits.ml: Alcotest Bv Fun List Printf QCheck QCheck_alcotest String
