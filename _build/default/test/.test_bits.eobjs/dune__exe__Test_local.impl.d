test/test_local.ml: Aig Alcotest Array Bv Cuts Gen Int64 List Opt QCheck QCheck_alcotest Sim Simsweep Util
