test/test_solver.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Sat Sim Util
