test/test_bdd.ml: Aig Alcotest Array Bdd Gen Opt Printf QCheck QCheck_alcotest Sim Util
