test/test_portfolio.ml: Aig Alcotest Gen Opt QCheck QCheck_alcotest Sim Simsweep Util
