test/test_support_cone.ml: Aig Alcotest Array Gen List QCheck QCheck_alcotest Util
