test/test_tt.ml: Alcotest Array Bool Bv Int64 List QCheck QCheck_alcotest Random
