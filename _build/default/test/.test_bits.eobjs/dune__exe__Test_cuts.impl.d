test/test_cuts.ml: Aig Alcotest Array Cuts Gen List QCheck QCheck_alcotest Util
