(* SOP cube algebra, Minato–Morreale ISOP and the factoring used by the
   rewriting passes. *)

let prop_isop_exact =
  QCheck.Test.make ~name:"isop covers exactly the on-set (4 vars)" ~count:500
    (QCheck.int_bound 65535) (fun x ->
      let tt = Bv.Tt.of_uint16 x in
      let sop = Bv.Isop.isop tt in
      Bv.Tt.equal (Bv.Sop.to_tt sop) tt)

let prop_isop_exact_6 =
  QCheck.Test.make ~name:"isop covers exactly the on-set (6 vars)" ~count:100
    QCheck.(pair int64 int64)
    (fun (w, _) ->
      let tt = { Bv.Tt.nvars = 6; bits = Bv.Bits.create ~len:64 false } in
      Bv.Bits.set_word tt.Bv.Tt.bits 0 w;
      let sop = Bv.Isop.isop tt in
      Bv.Tt.equal (Bv.Sop.to_tt sop) tt)

let prop_isop_interval =
  QCheck.Test.make ~name:"isop_interval stays in the interval" ~count:300
    QCheck.(pair (int_bound 65535) (int_bound 65535))
    (fun (a, b) ->
      let l = Bv.Tt.of_uint16 (a land b) in
      let u = Bv.Tt.of_uint16 (a lor b) in
      let s = Bv.Sop.to_tt (Bv.Isop.isop_interval ~lower:l ~upper:u) in
      (* l <= s <= u *)
      Bv.Tt.is_const0 (Bv.Tt.band l (Bv.Tt.bnot s))
      && Bv.Tt.is_const0 (Bv.Tt.band s (Bv.Tt.bnot u)))

let prop_factor_preserves =
  QCheck.Test.make ~name:"factor preserves the function" ~count:500
    (QCheck.int_bound 65535) (fun x ->
      let tt = Bv.Tt.of_uint16 x in
      let sop = Bv.Isop.isop tt in
      let form = Bv.Sop.factor sop in
      let ok = ref true in
      for m = 0 to 15 do
        let vals = Array.init 4 (fun i -> (m lsr i) land 1 = 1) in
        if Bv.Sop.eval_form form vals <> Bv.Tt.eval tt vals then ok := false
      done;
      !ok)

let prop_factor_no_worse =
  QCheck.Test.make ~name:"factoring never adds literals" ~count:300
    (QCheck.int_bound 65535) (fun x ->
      let sop = Bv.Isop.isop (Bv.Tt.of_uint16 x) in
      Bv.Sop.form_literals (Bv.Sop.factor sop) <= Bv.Sop.literals sop)

let test_cube_eval () =
  (* Cube x0 & !x2 over 3 vars. *)
  let c = { Bv.Sop.pos = 0b001; neg = 0b100 } in
  let sop = { Bv.Sop.nvars = 3; cubes = [ c ] } in
  Alcotest.(check bool) "101 -> false" false (Bv.Sop.eval sop [| true; false; true |]);
  Alcotest.(check bool) "100(lsb) -> true" true (Bv.Sop.eval sop [| true; false; false |]);
  Alcotest.(check int) "literals" 2 (Bv.Sop.literals sop)

let test_isop_known () =
  (* x & y has the single cube xy. *)
  let f = Bv.Tt.band (Bv.Tt.proj ~nvars:2 0) (Bv.Tt.proj ~nvars:2 1) in
  let sop = Bv.Isop.isop f in
  Alcotest.(check int) "one cube" 1 (List.length sop.Bv.Sop.cubes);
  Alcotest.(check int) "two literals" 2 (Bv.Sop.literals sop);
  (* Constants. *)
  Alcotest.(check int) "const0 no cube" 0
    (List.length (Bv.Isop.isop (Bv.Tt.const0 ~nvars:3)).Bv.Sop.cubes);
  let c1 = Bv.Isop.isop (Bv.Tt.const1 ~nvars:3) in
  Alcotest.(check bool) "const1 covered" true (Bv.Tt.is_const1 (Bv.Sop.to_tt c1))

let () =
  Alcotest.run "sop-isop"
    [
      ( "unit",
        [
          Alcotest.test_case "cube eval" `Quick test_cube_eval;
          Alcotest.test_case "isop known" `Quick test_isop_known;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_isop_exact;
            prop_isop_exact_6;
            prop_isop_interval;
            prop_factor_preserves;
            prop_factor_no_worse;
          ] );
    ]
