(* Robustness: fuzzed inputs never crash (they fail cleanly), degenerate
   networks flow through every component, and the engine is deterministic
   run-to-run. *)

let test_aiger_fuzz () =
  (* Random garbage must raise Parse_error, never anything else. *)
  let rng = Sim.Rng.create ~seed:0xf00dL in
  for _ = 1 to 500 do
    let len = Sim.Rng.int rng 200 in
    let s =
      String.init len (fun _ ->
          Char.chr (32 + Sim.Rng.int rng 95))
    in
    match Aig.Aiger_io.of_string s with
    | _ -> ()
    | exception Aig.Aiger_io.Parse_error _ -> ()
  done

let test_aiger_mutation_fuzz () =
  (* Mutate a VALID file: must either parse (to something) or fail with
     Parse_error — no crashes, no assert failures. *)
  let base = Aig.Aiger_io.to_string (Gen.Arith.adder ~bits:3) in
  let rng = Sim.Rng.create ~seed:0xbeefL in
  for _ = 1 to 500 do
    let b = Bytes.of_string base in
    for _ = 0 to Sim.Rng.int rng 4 do
      Bytes.set b
        (Sim.Rng.int rng (Bytes.length b))
        (Char.chr (32 + Sim.Rng.int rng 95))
    done;
    match Aig.Aiger_io.of_string (Bytes.to_string b) with
    | _ -> ()
    | exception Aig.Aiger_io.Parse_error _ -> ()
  done

let test_binary_fuzz () =
  let base = Aig.Aiger_io.to_binary_string (Gen.Arith.adder ~bits:3) in
  let rng = Sim.Rng.create ~seed:0xabcdL in
  for _ = 1 to 500 do
    let b = Bytes.of_string base in
    let cut = 1 + Sim.Rng.int rng (Bytes.length b - 1) in
    let s = Bytes.sub_string b 0 cut in
    match Aig.Aiger_io.of_string s with
    | _ -> ()
    | exception Aig.Aiger_io.Parse_error _ -> ()
  done

let test_degenerate_networks () =
  Util.with_pool (fun pool ->
      (* No POs at all. *)
      let g = Aig.Network.create () in
      let _ = Aig.Network.add_pi g in
      let m = Aig.Miter.build g (Aig.Network.copy g) in
      Alcotest.(check bool) "empty miter solved" true (Aig.Miter.solved m);
      let r = Simsweep.Engine.run ~pool m in
      Alcotest.(check bool) "proved" true (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved);
      (* Constant-output network. *)
      let c = Aig.Network.create () in
      let _ = Aig.Network.add_pi c in
      Aig.Network.add_po c Aig.Lit.const_false;
      Aig.Network.add_po c Aig.Lit.const_true;
      let c2 = Aig.Network.copy c in
      let m = Aig.Miter.build c c2 in
      let r = Simsweep.Engine.run ~pool m in
      Alcotest.(check bool) "const POs proved" true
        (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved);
      (* PO fed directly by a PI. *)
      let p = Aig.Network.create () in
      let a = Aig.Network.add_pi p in
      Aig.Network.add_po p a;
      Aig.Network.add_po p (Aig.Lit.neg a);
      let m = Aig.Miter.build p (Aig.Network.copy p) in
      let r = Simsweep.Engine.run ~pool m in
      Alcotest.(check bool) "pi-driven POs proved" true
        (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved))

let test_pi_po_mismatch_detected () =
  Util.with_pool (fun pool ->
      (* Same interface, one PO swapped with its neighbour: must disprove. *)
      let g = Gen.Arith.adder ~bits:4 in
      let bad = Aig.Network.copy g in
      let l0 = Aig.Network.po bad 0 and l1 = Aig.Network.po bad 1 in
      Aig.Network.set_po bad 0 l1;
      Aig.Network.set_po bad 1 l0;
      let m = Aig.Miter.build g bad in
      match (Simsweep.Engine.check_with_fallback ~pool m).Simsweep.Engine.final with
      | Simsweep.Engine.Disproved (cex, po) ->
          Alcotest.(check bool) "cex valid" true (Sim.Cex.check m cex po)
      | _ -> Alcotest.fail "swapped outputs must be detected")

let test_engine_deterministic () =
  Util.with_pool (fun pool ->
      let g = Gen.Arith.multiplier ~bits:6 in
      let m = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
      let cfg =
        { Simsweep.Config.scaled with Simsweep.Config.k_cap_p = 8; k_p = 6; k_g = 8 }
      in
      let run () =
        let r = Simsweep.Engine.run ~config:cfg ~pool (Aig.Network.copy m) in
        ( r.Simsweep.Engine.outcome = Simsweep.Engine.Proved,
          r.Simsweep.Engine.reduced_size,
          r.Simsweep.Engine.stats.Simsweep.Stats.pairs_proved_global,
          r.Simsweep.Engine.stats.Simsweep.Stats.pairs_proved_local,
          r.Simsweep.Engine.stats.Simsweep.Stats.local_phases )
      in
      Alcotest.(check bool) "identical runs" true (run () = run ()))

let test_engine_domain_count_independent () =
  (* The verdict and reduction must not depend on the worker count. *)
  let g = Gen.Arith.multiplier ~bits:5 in
  let m = Aig.Miter.build g (Opt.Resyn.light g) in
  let cfg =
    { Simsweep.Config.scaled with Simsweep.Config.k_cap_p = 6; k_p = 4; k_g = 6 }
  in
  let run nd =
    let pool = Par.Pool.create ~num_domains:nd () in
    Fun.protect
      ~finally:(fun () -> Par.Pool.shutdown pool)
      (fun () ->
        let r = Simsweep.Engine.run ~config:cfg ~pool (Aig.Network.copy m) in
        (r.Simsweep.Engine.outcome = Simsweep.Engine.Proved, r.Simsweep.Engine.reduced_size))
  in
  Alcotest.(check bool) "1 vs 4 domains" true (run 1 = run 4)

let prop_shell_fuzz =
  QCheck.Test.make ~name:"shell never crashes on word soup" ~count:100
    Util.arb_seed (fun seed ->
      let st = Shell.Command.create () in
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let vocab =
        [| "gen"; "adder"; "cec"; "miter"; "load"; "store"; "-1"; "0"; "999";
           "map"; "sim"; "read"; "write"; "foo"; ";" |]
      in
      let words =
        List.init (1 + Sim.Rng.int rng 4) (fun _ ->
            vocab.(Sim.Rng.int rng (Array.length vocab)))
      in
      match Shell.Command.exec st (String.concat " " words) with
      | Ok _ | Error _ -> true)

let prop_dimacs_fuzz =
  QCheck.Test.make ~name:"dimacs parser never crashes" ~count:200 Util.arb_seed
    (fun seed ->
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let tokens = [| "p"; "cnf"; "1"; "-1"; "0"; "2"; "-2"; "x"; "\n"; " " |] in
      let text =
        String.concat " "
          (List.init (Sim.Rng.int rng 30) (fun _ ->
               tokens.(Sim.Rng.int rng (Array.length tokens))))
      in
      match Sat.Dimacs.parse text with Ok _ | Error _ -> true)

let () =
  Alcotest.run "robustness"
    [
      ( "fuzz",
        [
          Alcotest.test_case "aiger garbage" `Quick test_aiger_fuzz;
          Alcotest.test_case "aiger mutation" `Quick test_aiger_mutation_fuzz;
          Alcotest.test_case "binary truncation" `Quick test_binary_fuzz;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "degenerate networks" `Quick test_degenerate_networks;
          Alcotest.test_case "swapped outputs" `Quick test_pi_po_mismatch_detected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "domain-count independent" `Quick
            test_engine_domain_count_independent;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_shell_fuzz; prop_dimacs_fuzz ] );
    ]
