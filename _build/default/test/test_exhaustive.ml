(* The exhaustive simulator (Algorithm 1): verdicts must agree with global
   truth tables computed by reference evaluation, across window shapes,
   complement flags, constant targets and multi-round operation under tiny
   memory budgets. *)

let run_jobs ?(memory_words = 1 lsl 16) g jobs num_tags =
  Util.with_pool (fun pool ->
      Simsweep.Exhaustive.run g ~pool ~memory_words ~jobs ~num_tags ())

let test_simple_pair () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_xor g a b in
  let u = Aig.Network.add_and g a (Aig.Lit.neg b) in
  let v = Aig.Network.add_and g (Aig.Lit.neg a) b in
  let nx = Aig.Network.add_and g (Aig.Lit.neg u) (Aig.Lit.neg v) in
  Aig.Network.add_po g x;
  Aig.Network.add_po g nx;
  let inputs = [| Aig.Lit.node a; Aig.Lit.node b |] in
  let jobs =
    [
      (* x == !nx: complement flag true. *)
      {
        Simsweep.Exhaustive.inputs;
        pairs =
          [
            { Simsweep.Exhaustive.a = Aig.Lit.node x; b = Aig.Lit.node nx; compl_ = true; tag = 0 };
            { Simsweep.Exhaustive.a = Aig.Lit.node x; b = Aig.Lit.node nx; compl_ = false; tag = 1 };
          ];
      };
    ]
  in
  let v = run_jobs g jobs 2 in
  Alcotest.(check bool) "complement proved" true (v.(0) = Simsweep.Exhaustive.Proved);
  (match v.(1) with
  | Simsweep.Exhaustive.Mismatch _ -> ()
  | _ -> Alcotest.fail "same-phase comparison must mismatch")

let test_const_target () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g in
  let z = Aig.Network.add_and g a (Aig.Lit.neg a) in
  (* strash reduces a&!a to const; build something else equal to 0:
     a & b & !b via raw structure is also strashed... use a & b with b
     forced 0 by a second input pattern — instead just test a non-constant
     node against the constant target. *)
  ignore z;
  let b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  Aig.Network.add_po g x;
  let inputs = [| Aig.Lit.node a; Aig.Lit.node b |] in
  let jobs =
    [
      {
        Simsweep.Exhaustive.inputs;
        pairs = [ { Simsweep.Exhaustive.a = Aig.Lit.node x; b = -1; compl_ = false; tag = 0 } ];
      };
    ]
  in
  match (run_jobs g jobs 1).(0) with
  | Simsweep.Exhaustive.Mismatch { pattern; _ } ->
      (* First pattern where a&b = 1 is a=1,b=1 = pattern 3. *)
      Alcotest.(check int) "first mismatch pattern" 3 pattern
  | _ -> Alcotest.fail "a&b is not constant false"

let test_invalid_window () =
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  Aig.Network.add_po g x;
  let jobs =
    [
      {
        Simsweep.Exhaustive.inputs = [| Aig.Lit.node a |];
        pairs = [ { Simsweep.Exhaustive.a = Aig.Lit.node x; b = -1; compl_ = false; tag = 0 } ];
      };
    ]
  in
  Alcotest.(check bool) "invalid" true
    ((run_jobs g jobs 1).(0) = Simsweep.Exhaustive.Invalid)

let test_root_is_input () =
  (* A pair whose second node sits on the cut itself: its truth table is
     the projection. *)
  let g = Aig.Network.create () in
  let a = Aig.Network.add_pi g and b = Aig.Network.add_pi g in
  let x = Aig.Network.add_and g a b in
  let y = Aig.Network.add_and g x (Aig.Lit.neg b) in
  Aig.Network.add_po g y;
  (* y vs x over cut {x, b}: y = x & !b, not equal to x. *)
  let jobs =
    [
      {
        Simsweep.Exhaustive.inputs = [| Aig.Lit.node x; Aig.Lit.node b |];
        pairs =
          [ { Simsweep.Exhaustive.a = Aig.Lit.node y; b = Aig.Lit.node x; compl_ = false; tag = 0 } ];
      };
    ]
  in
  match (run_jobs g jobs 1).(0) with
  | Simsweep.Exhaustive.Mismatch _ -> ()
  | _ -> Alcotest.fail "y != x over this cut"

let test_multi_round_tiny_memory () =
  (* A 9-input window has 8 truth-table words; a tiny budget forces
     several rounds and the verdicts must not change. *)
  let g = Gen.Arith.adder ~bits:4 in
  let opt = Opt.Xorflip.run g in
  let m = Aig.Miter.build g opt in
  let po_node i = Aig.Lit.node (Aig.Network.po m i) in
  let pis = Array.init (Aig.Network.num_pis m) (fun i -> Aig.Network.pi m i) in
  let mk_jobs () =
    List.filter_map
      (fun i ->
        if Aig.Network.po m i = Aig.Lit.const_false then None
        else
          Some
            {
              Simsweep.Exhaustive.inputs = pis;
              pairs =
                [
                  {
                    Simsweep.Exhaustive.a = po_node i;
                    b = -1;
                    compl_ = Aig.Lit.is_compl (Aig.Network.po m i);
                    tag = i;
                  };
                ];
            })
      (List.init (Aig.Network.num_pos m) Fun.id)
  in
  let big = run_jobs ~memory_words:(1 lsl 20) m (mk_jobs ()) (Aig.Network.num_pos m) in
  let small = run_jobs ~memory_words:600 m (mk_jobs ()) (Aig.Network.num_pos m) in
  Alcotest.(check bool) "same verdicts across budgets" true (big = small);
  Array.iteri
    (fun i v ->
      if Aig.Network.po m i <> Aig.Lit.const_false then
        Alcotest.(check bool) (Printf.sprintf "po %d proved" i) true
          (v = Simsweep.Exhaustive.Proved))
    big

let test_stats_accounting () =
  let g = Gen.Arith.adder ~bits:3 in
  let stats = Simsweep.Exhaustive.new_stats () in
  Util.with_pool (fun pool ->
      let pis = Array.init 6 (fun i -> Aig.Network.pi g i) in
      let jobs =
        [
          {
            Simsweep.Exhaustive.inputs = pis;
            pairs =
              [
                {
                  Simsweep.Exhaustive.a = Aig.Lit.node (Aig.Network.po g 3);
                  b = -1;
                  compl_ = false;
                  tag = 0;
                };
              ];
          };
        ]
      in
      ignore
        (Simsweep.Exhaustive.run g ~pool ~memory_words:4096 ~stats ~jobs
           ~num_tags:1 ()));
  Alcotest.(check int) "one window" 1 stats.Simsweep.Exhaustive.windows;
  Alcotest.(check bool) "nodes counted" true (stats.Simsweep.Exhaustive.nodes_simulated > 0);
  Alcotest.(check bool) "rounds counted" true (stats.Simsweep.Exhaustive.rounds >= 1)

let test_arena_mixed_batches () =
  (* Arena property: one batch mixing small (memoised) and large windows
     must produce identical verdicts and words_computed whatever the memory
     budget (arena slice sizes, round counts) and whether the arena is
     created per run or reused across runs. *)
  let g = Aig.Network.create () in
  let npis = 14 in
  let pis = Array.init npis (fun _ -> Aig.Network.add_pi g) in
  (* chain.(k) = pi0 & ... & pik, so the window pi0..pik is an exact cut. *)
  let chain = Array.make npis pis.(0) in
  for k = 1 to npis - 1 do
    chain.(k) <- Aig.Network.add_and g chain.(k - 1) pis.(k)
  done;
  Aig.Network.add_po g chain.(npis - 1);
  (* Self-pairs are always Proved and make word counts exact. *)
  let widths = [ 4; 8; 10; 12; 14 ] in
  let jobs =
    List.mapi
      (fun tag w ->
        {
          Simsweep.Exhaustive.inputs =
            Array.map Aig.Lit.node (Array.sub pis 0 w);
          pairs =
            [
              {
                Simsweep.Exhaustive.a = Aig.Lit.node chain.(w - 1);
                b = Aig.Lit.node chain.(w - 1);
                compl_ = false;
                tag;
              };
            ];
        })
      widths
  in
  let num_tags = List.length widths in
  let run ?arena memory_words =
    let stats = Simsweep.Exhaustive.new_stats () in
    let v =
      Util.with_pool (fun pool ->
          Simsweep.Exhaustive.run g ~pool ~memory_words ?arena ~stats ~jobs
            ~num_tags ())
    in
    (v, stats)
  in
  let ref_v, ref_stats = run (1 lsl 16) in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "self-pair proved" true
        (v = Simsweep.Exhaustive.Proved))
    ref_v;
  Alcotest.(check bool) "words counted" true
    (ref_stats.Simsweep.Exhaustive.words_computed > 0);
  Alcotest.(check bool) "arena used" true
    (ref_stats.Simsweep.Exhaustive.arena_hwm_words > 0);
  (* Smaller budgets: more rounds, smaller arena slices, same results. *)
  List.iter
    (fun budget ->
      let v, stats = run budget in
      Alcotest.(check bool)
        (Printf.sprintf "verdicts at budget %d" budget)
        true (v = ref_v);
      Alcotest.(check int)
        (Printf.sprintf "words_computed at budget %d" budget)
        ref_stats.Simsweep.Exhaustive.words_computed
        stats.Simsweep.Exhaustive.words_computed)
    [ 4096; 512; 64 ];
  (* A caller-provided arena reused across successive runs behaves like a
     fresh one and never regrows once warm. *)
  let arena = Simsweep.Arena.create ~words:(1 lsl 16) in
  let v1, s1 = run ~arena (1 lsl 16) in
  let v2, s2 = run ~arena (1 lsl 16) in
  Alcotest.(check bool) "persistent arena verdicts" true
    (v1 = ref_v && v2 = ref_v);
  Alcotest.(check int) "persistent arena words"
    ref_stats.Simsweep.Exhaustive.words_computed
    s1.Simsweep.Exhaustive.words_computed;
  Alcotest.(check int) "no growth on reuse" 0
    (s1.Simsweep.Exhaustive.arena_grows + s2.Simsweep.Exhaustive.arena_grows)

let prop_matches_truth_tables =
  QCheck.Test.make ~name:"verdicts agree with reference truth tables"
    ~count:40 Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:50 ~pos:2 seed in
      (* Compare every AND node against every other in a window over all
         PIs — brute truth tables decide the expected verdict. *)
      let ands = ref [] in
      Aig.Network.iter_ands g (fun n -> ands := n :: !ands);
      let nodes = Array.of_list (List.rev !ands) in
      if Array.length nodes < 2 then true
      else begin
        let pis = Array.init 6 (fun i -> Aig.Network.pi g i) in
        let pairs = ref [] in
        let expected = ref [] in
        let tag = ref 0 in
        for i = 0 to min 5 (Array.length nodes - 2) do
          let a = nodes.(i + 1) and b = nodes.(i) in
          let ta = Util.global_tt g (Aig.Lit.make a false) in
          let tb = Util.global_tt g (Aig.Lit.make b false) in
          let compl_ = i mod 2 = 0 in
          let expect =
            let tb' = if compl_ then Bv.Tt.bnot tb else tb in
            Bv.Tt.equal ta tb'
          in
          pairs := { Simsweep.Exhaustive.a; b; compl_; tag = !tag } :: !pairs;
          expected := expect :: !expected;
          incr tag
        done;
        let jobs = [ { Simsweep.Exhaustive.inputs = pis; pairs = !pairs } ] in
        let verdicts = run_jobs g jobs !tag in
        List.for_all2
          (fun p expect ->

            match verdicts.(p.Simsweep.Exhaustive.tag) with
            | Simsweep.Exhaustive.Proved -> expect
            | Simsweep.Exhaustive.Mismatch { pattern; inputs } ->
                (not expect)
                && (* the mismatch pattern is a true witness *)
                let cex = Sim.Cex.of_window_pattern g ~inputs ~pattern in
                let va = Sim.Cex.eval_lit g cex (Aig.Lit.make p.Simsweep.Exhaustive.a false) in
                let vb = Sim.Cex.eval_lit g cex (Aig.Lit.make p.Simsweep.Exhaustive.b false) in
                va <> (vb <> p.Simsweep.Exhaustive.compl_)
            | Simsweep.Exhaustive.Invalid -> false)
          (List.rev !pairs) (List.rev !expected)
      end)

let prop_budget_independent =
  QCheck.Test.make ~name:"verdicts independent of memory budget" ~count:20
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:8 ~nodes:60 ~pos:2 seed in
      let pis = Array.init 8 (fun i -> Aig.Network.pi g i) in
      let mk tag n =
        { Simsweep.Exhaustive.a = n; b = -1; compl_ = false; tag }
      in
      let ands = ref [] in
      Aig.Network.iter_ands g (fun n -> ands := n :: !ands);
      match !ands with
      | n1 :: n2 :: _ ->
          let jobs =
            [ { Simsweep.Exhaustive.inputs = pis; pairs = [ mk 0 n1; mk 1 n2 ] } ]
          in
          let a = run_jobs ~memory_words:(1 lsl 18) g jobs 2 in
          let b = run_jobs ~memory_words:256 g jobs 2 in
          a = b
      | _ -> true)

let () =
  Alcotest.run "exhaustive"
    [
      ( "unit",
        [
          Alcotest.test_case "simple pair" `Quick test_simple_pair;
          Alcotest.test_case "const target" `Quick test_const_target;
          Alcotest.test_case "invalid window" `Quick test_invalid_window;
          Alcotest.test_case "root is input" `Quick test_root_is_input;
          Alcotest.test_case "multi-round tiny memory" `Quick test_multi_round_tiny_memory;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
          Alcotest.test_case "arena mixed batches" `Quick test_arena_mixed_batches;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_matches_truth_tables; prop_budget_independent ] );
    ]
