(* Window merging (§III-B3): merged batches must respect the k_s bound,
   preserve every pair, and leave verdicts unchanged. *)

let job inputs pairs = { Simsweep.Exhaustive.inputs; pairs }

let pair a tag = { Simsweep.Exhaustive.a; b = -1; compl_ = false; tag }

let test_paper_example_shape () =
  (* Windows with inputs {1,2}, {1,2,3}, {1,5}, {1,6}: under k_s = 3 the
     first two merge, the rest merge pairwise as capacity allows. *)
  let jobs =
    [
      job [| 1; 2 |] [ pair 10 0 ];
      job [| 1; 2; 3 |] [ pair 11 1 ];
      job [| 1; 5 |] [ pair 12 2 ];
      job [| 1; 6 |] [ pair 13 3 ];
    ]
  in
  let merged = Simsweep.Wmerge.merge ~k_s:3 jobs in
  (* Every merged window obeys the bound. *)
  List.iter
    (fun (j : Simsweep.Exhaustive.job) ->
      Alcotest.(check bool) "within k_s" true
        (Array.length j.Simsweep.Exhaustive.inputs <= 3))
    merged;
  (* All four pairs survive exactly once. *)
  let tags =
    List.concat_map
      (fun (j : Simsweep.Exhaustive.job) ->
        List.map (fun p -> p.Simsweep.Exhaustive.tag) j.Simsweep.Exhaustive.pairs)
      merged
    |> List.sort compare
  in
  Alcotest.(check (list int)) "pairs preserved" [ 0; 1; 2; 3 ] tags;
  (* {1,2} and {1,2,3} share a window. *)
  Alcotest.(check bool) "fewer windows" true (List.length merged < 4)

let test_inputs_sorted_union () =
  let merged = Simsweep.Wmerge.merge ~k_s:4 [ job [| 5; 9 |] [ pair 1 0 ]; job [| 2; 5 |] [ pair 2 1 ] ] in
  match merged with
  | [ (j : Simsweep.Exhaustive.job) ] ->
      Alcotest.(check (list int)) "sorted union" [ 2; 5; 9 ]
        (Array.to_list j.Simsweep.Exhaustive.inputs)
  | _ -> Alcotest.fail "expected a single merged window"

let test_no_merge_when_tight () =
  let jobs = [ job [| 1; 2 |] [ pair 1 0 ]; job [| 3; 4 |] [ pair 2 1 ] ] in
  let merged = Simsweep.Wmerge.merge ~k_s:2 jobs in
  Alcotest.(check int) "kept apart" 2 (List.length merged)

let prop_semantics_preserved =
  QCheck.Test.make ~name:"merged and unmerged verdicts agree" ~count:25
    Util.arb_seed (fun seed ->
      Util.with_pool (fun pool ->
          let g = Util.random_network ~pis:8 ~nodes:60 ~pos:4 seed in
          (* One window per PO over its exact support, then merge. *)
          let jobs =
            List.filter_map
              (fun i ->
                let l = Aig.Network.po g i in
                if Aig.Lit.node l = 0 || Aig.Network.is_pi g (Aig.Lit.node l) then None
                else
                  Some
                    (job
                       (Aig.Support.exact g (Aig.Lit.node l))
                       [
                         {
                           Simsweep.Exhaustive.a = Aig.Lit.node l;
                           b = -1;
                           compl_ = Aig.Lit.is_compl l;
                           tag = i;
                         };
                       ]))
              (List.init (Aig.Network.num_pos g) Fun.id)
          in
          let run jobs =
            Simsweep.Exhaustive.run g ~pool ~memory_words:(1 lsl 16) ~jobs
              ~num_tags:(Aig.Network.num_pos g) ()
          in
          let plain = run jobs in
          let merged = run (Simsweep.Wmerge.merge ~k_s:8 jobs) in
          let agree = ref true in
          Array.iteri
            (fun i v ->
              match (v, merged.(i)) with
              | Simsweep.Exhaustive.Proved, Simsweep.Exhaustive.Proved -> ()
              | Simsweep.Exhaustive.Mismatch _, Simsweep.Exhaustive.Mismatch _ ->
                  (* pattern indices may differ across window shapes; the
                     verdict class must agree *)
                  ()
              | Simsweep.Exhaustive.Invalid, Simsweep.Exhaustive.Invalid -> ()
              | _ -> agree := false)
            plain;
          !agree))

let prop_fewer_or_equal_windows =
  QCheck.Test.make ~name:"merging never increases window count" ~count:50
    Util.arb_seed (fun seed ->
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let jobs =
        List.init 12 (fun i ->
            let n = 1 + Sim.Rng.int rng 3 in
            let inputs =
              Array.init n (fun k -> 1 + (Sim.Rng.int rng 6 * (k + 1)))
              |> Array.to_list |> List.sort_uniq compare |> Array.of_list
            in
            job inputs [ pair (100 + i) i ])
      in
      let merged = Simsweep.Wmerge.merge ~k_s:4 jobs in
      List.length merged <= List.length jobs
      && List.for_all
           (fun (j : Simsweep.Exhaustive.job) ->
             Array.length j.Simsweep.Exhaustive.inputs <= 4)
           merged)

let () =
  Alcotest.run "wmerge"
    [
      ( "unit",
        [
          Alcotest.test_case "paper example shape" `Quick test_paper_example_shape;
          Alcotest.test_case "sorted union" `Quick test_inputs_sorted_union;
          Alcotest.test_case "no merge when tight" `Quick test_no_merge_when_tight;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_semantics_preserved; prop_fewer_or_equal_windows ] );
    ]
