(* CDCL SAT solver: unit cases, cross-check against brute force, classic
   hard instances, assumptions and conflict limits. *)

let l v = Sat.Solver.mklit v false
let nl v = Sat.Solver.mklit v true

let test_basic_sat () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s and b = Sat.Solver.new_var s in
  assert (Sat.Solver.add_clause s [ l a; l b ]);
  assert (Sat.Solver.add_clause s [ nl a; l b ]);
  assert (Sat.Solver.add_clause s [ l a; nl b ]);
  (match Sat.Solver.solve s with
  | Sat.Solver.Sat -> ()
  | _ -> Alcotest.fail "expected SAT");
  Alcotest.(check bool) "a" true (Sat.Solver.model_value s a);
  Alcotest.(check bool) "b" true (Sat.Solver.model_value s b);
  (* Adding the blocking clause makes it UNSAT. *)
  ignore (Sat.Solver.add_clause s [ nl a; nl b ]);
  match Sat.Solver.solve s with
  | Sat.Solver.Unsat -> ()
  | _ -> Alcotest.fail "expected UNSAT"

let test_empty_and_unit () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  Alcotest.(check bool) "unit ok" true (Sat.Solver.add_clause s [ l a ]);
  Alcotest.(check bool) "conflicting unit" false (Sat.Solver.add_clause s [ nl a ]);
  Alcotest.(check bool) "now unsat" true (Sat.Solver.solve s = Sat.Solver.Unsat)

let test_tautology () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s in
  Alcotest.(check bool) "taut" true (Sat.Solver.add_clause s [ l a; nl a ]);
  Alcotest.(check bool) "sat" true (Sat.Solver.solve s = Sat.Solver.Sat)

let pigeonhole pigeons holes =
  let s = Sat.Solver.create () in
  let x = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    ignore (Sat.Solver.add_clause s (List.init holes (fun h -> l x.(p).(h))))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        ignore (Sat.Solver.add_clause s [ nl x.(p1).(h); nl x.(p2).(h) ])
      done
    done
  done;
  s

let test_pigeonhole () =
  Alcotest.(check bool) "php(5,4) unsat" true
    (Sat.Solver.solve (pigeonhole 5 4) = Sat.Solver.Unsat);
  Alcotest.(check bool) "php(4,4) sat" true
    (Sat.Solver.solve (pigeonhole 4 4) = Sat.Solver.Sat)

let test_conflict_limit () =
  let s = pigeonhole 8 7 in
  match Sat.Solver.solve ~conflict_limit:5 s with
  | Sat.Solver.Unknown -> ()
  | Sat.Solver.Unsat -> Alcotest.fail "php(8,7) should not solve in 5 conflicts"
  | Sat.Solver.Sat -> Alcotest.fail "php(8,7) is unsat"

let test_assumptions () =
  let s = Sat.Solver.create () in
  let a = Sat.Solver.new_var s and b = Sat.Solver.new_var s in
  ignore (Sat.Solver.add_clause s [ nl a; l b ]);
  Alcotest.(check bool) "a=>b violated" true
    (Sat.Solver.solve ~assumptions:[ l a; nl b ] s = Sat.Solver.Unsat);
  Alcotest.(check bool) "solvable under a" true
    (Sat.Solver.solve ~assumptions:[ l a ] s = Sat.Solver.Sat);
  Alcotest.(check bool) "b forced" true (Sat.Solver.model_value s b);
  (* Solver stays reusable after assumption UNSAT. *)
  Alcotest.(check bool) "still sat free" true (Sat.Solver.solve s = Sat.Solver.Sat)

let prop_random_3sat =
  QCheck.Test.make ~name:"random 3-SAT vs brute force" ~count:300
    QCheck.(pair Util.arb_seed (int_range 5 9))
    (fun (seed, nv) ->
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let nc = 5 + Sim.Rng.int rng (4 * nv) in
      let clauses =
        List.init nc (fun _ ->
            List.init 3 (fun _ ->
                Sat.Solver.mklit (Sim.Rng.int rng nv) (Sim.Rng.bool rng)))
      in
      let s = Sat.Solver.create () in
      for _ = 1 to nv do
        ignore (Sat.Solver.new_var s)
      done;
      let ok = List.for_all (fun c -> Sat.Solver.add_clause s c) clauses in
      let brute =
        let sat = ref false in
        for m = 0 to (1 lsl nv) - 1 do
          if not !sat then begin
            let v lit =
              let var = Sat.Solver.var_of_lit lit in
              (m lsr var) land 1 = 1 <> (lit land 1 = 1)
            in
            if List.for_all (List.exists v) clauses then sat := true
          end
        done;
        !sat
      in
      let got =
        if not ok then false
        else
          match Sat.Solver.solve s with
          | Sat.Solver.Sat ->
              (* model must satisfy all clauses *)
              let v lit =
                Sat.Solver.model_value s (Sat.Solver.var_of_lit lit)
                <> (lit land 1 = 1)
              in
              List.for_all (List.exists v) clauses
          | Sat.Solver.Unsat -> false
          | Sat.Solver.Unknown -> not brute (* treat as wrong *)
      in
      got = brute)

let prop_incremental =
  QCheck.Test.make ~name:"incremental solving consistent" ~count:50
    Util.arb_seed (fun seed ->
      (* Add clauses in two stages; results must match adding all at once. *)
      let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
      let nv = 6 in
      let mk_clause () =
        List.init 3 (fun _ -> Sat.Solver.mklit (Sim.Rng.int rng nv) (Sim.Rng.bool rng))
      in
      let c1 = List.init 8 (fun _ -> mk_clause ()) in
      let c2 = List.init 8 (fun _ -> mk_clause ()) in
      let solve_all cs =
        let s = Sat.Solver.create () in
        for _ = 1 to nv do
          ignore (Sat.Solver.new_var s)
        done;
        let ok = List.for_all (fun c -> Sat.Solver.add_clause s c) cs in
        if not ok then Sat.Solver.Unsat else Sat.Solver.solve s
      in
      let incremental =
        let s = Sat.Solver.create () in
        for _ = 1 to nv do
          ignore (Sat.Solver.new_var s)
        done;
        let ok1 = List.for_all (fun c -> Sat.Solver.add_clause s c) c1 in
        if not ok1 then Sat.Solver.Unsat
        else begin
          ignore (Sat.Solver.solve s);
          let ok2 = List.for_all (fun c -> Sat.Solver.add_clause s c) c2 in
          if not ok2 then Sat.Solver.Unsat else Sat.Solver.solve s
        end
      in
      solve_all (c1 @ c2) = incremental)

let test_stats () =
  let s = pigeonhole 5 4 in
  ignore (Sat.Solver.solve s);
  Alcotest.(check bool) "conflicts counted" true (Sat.Solver.num_conflicts s > 0);
  Alcotest.(check bool) "propagations counted" true (Sat.Solver.num_propagations s > 0);
  Alcotest.(check bool) "vars" true (Sat.Solver.num_vars s = 20)

let () =
  Alcotest.run "solver"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic_sat;
          Alcotest.test_case "units" `Quick test_empty_and_unit;
          Alcotest.test_case "tautology" `Quick test_tautology;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "conflict limit" `Quick test_conflict_limit;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_random_3sat; prop_incremental ] );
    ]
