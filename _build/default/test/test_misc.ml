(* Remaining public surface: the int vector, Dot export, configuration
   invariants and a full-suite integration run of the combined checker. *)

let test_vec () =
  let v = Aig.Vec.create () in
  Alcotest.(check int) "empty" 0 (Aig.Vec.length v);
  for i = 0 to 99 do
    Aig.Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Aig.Vec.length v);
  Alcotest.(check int) "get" 81 (Aig.Vec.get v 9);
  Aig.Vec.set v 9 7;
  Alcotest.(check int) "set" 7 (Aig.Vec.get v 9);
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get: index out of range")
    (fun () -> ignore (Aig.Vec.get v 100));
  let sum = ref 0 in
  Aig.Vec.iter (fun x -> sum := !sum + x) v;
  Alcotest.(check bool) "iter" true (!sum > 0);
  let arr = Aig.Vec.to_array v in
  Alcotest.(check int) "to_array" 100 (Array.length arr);
  let v2 = Aig.Vec.of_array arr in
  Alcotest.(check int) "of_array" 7 (Aig.Vec.get v2 9);
  Aig.Vec.clear v;
  Alcotest.(check int) "clear" 0 (Aig.Vec.length v)

let test_dot () =
  let g = Gen.Arith.adder ~bits:2 in
  let s = Aig.Dot.to_string g in
  Alcotest.(check bool) "digraph" true
    (String.length s > 20 && String.sub s 0 7 = "digraph");
  (* Every PI, PO and AND must appear. *)
  for i = 0 to Aig.Network.num_pis g - 1 do
    let needle = Printf.sprintf "label=\"x%d\"" i in
    if
      not
        (let re = Str.regexp_string needle in
         try
           ignore (Str.search_forward re s 0);
           true
         with Not_found -> false)
    then Alcotest.failf "missing PI %d" i
  done;
  Alcotest.check_raises "size limit"
    (Invalid_argument "Dot.to_string: network too large to plot") (fun () ->
      ignore (Aig.Dot.to_string ~max_nodes:10 (Gen.Arith.multiplier ~bits:8)))

let test_config_defaults () =
  let c = Simsweep.Config.default in
  (* The paper's parameter values (§IV). *)
  Alcotest.(check int) "k_P" 32 c.Simsweep.Config.k_cap_p;
  Alcotest.(check int) "k_p" 16 c.Simsweep.Config.k_p;
  Alcotest.(check int) "k_g" 16 c.Simsweep.Config.k_g;
  Alcotest.(check int) "k_l" 8 c.Simsweep.Config.k_l;
  Alcotest.(check int) "C" 8 c.Simsweep.Config.c;
  Alcotest.(check bool) "k_P > k_p (paper requires)" true
    (c.Simsweep.Config.k_cap_p > c.Simsweep.Config.k_p);
  Alcotest.(check int) "three passes" 3 (List.length c.Simsweep.Config.passes);
  let s = Simsweep.Config.scaled in
  Alcotest.(check bool) "scaled keeps ordering" true
    (s.Simsweep.Config.k_cap_p > s.Simsweep.Config.k_p)

let suite_case name =
  Util.with_pool (fun pool ->
      let case = Gen.Suite.build ~scale:0 name in
      let c =
        Simsweep.Engine.check_with_fallback ~config:Simsweep.Config.scaled ~pool
          case.Gen.Suite.miter
      in
      Alcotest.(check bool) (name ^ " verified") true
        (c.Simsweep.Engine.final = Simsweep.Engine.Proved))

let () =
  Alcotest.run "misc"
    [
      ( "unit",
        [
          Alcotest.test_case "vec" `Quick test_vec;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "config defaults" `Quick test_config_defaults;
        ] );
      ( "suite-integration",
        List.map
          (fun name -> Alcotest.test_case name `Slow (fun () -> suite_case name))
          Gen.Suite.names );
    ]
