(* k-LUT mapping: structural legality, quality orderings and — the part
   that matters for this repo — post-mapping equivalence checking. *)

let test_legal_mapping () =
  let g = Gen.Arith.multiplier ~bits:6 in
  let m = Lutmap.Mapper.map ~k:6 g in
  (* Every LUT obeys the input bound and its cut bounds its root. *)
  List.iter
    (fun (l : Lutmap.Mapper.lut) ->
      Alcotest.(check bool) "within k" true (Array.length l.Lutmap.Mapper.inputs <= 6);
      Alcotest.(check bool) "valid cut" true
        (Cuts.Cut.check g ~root:l.Lutmap.Mapper.root l.Lutmap.Mapper.inputs))
    m.Lutmap.Mapper.luts;
  (* The cover is closed: every non-PI LUT input is some LUT's root. *)
  let roots = Hashtbl.create 64 in
  List.iter
    (fun (l : Lutmap.Mapper.lut) -> Hashtbl.replace roots l.Lutmap.Mapper.root ())
    m.Lutmap.Mapper.luts;
  List.iter
    (fun (l : Lutmap.Mapper.lut) ->
      Array.iter
        (fun i ->
          if Aig.Network.is_and g i then
            Alcotest.(check bool) "input covered" true (Hashtbl.mem roots i))
        l.Lutmap.Mapper.inputs)
    m.Lutmap.Mapper.luts;
  Alcotest.(check bool) "fewer LUTs than ANDs" true
    (Lutmap.Mapper.lut_count m < Aig.Network.num_ands g);
  Alcotest.(check bool) "depth shrinks" true
    (m.Lutmap.Mapper.depth < Aig.Network.depth g);
  let hist = Lutmap.Mapper.input_histogram m in
  Alcotest.(check int) "histogram total" (Lutmap.Mapper.lut_count m)
    (Array.fold_left ( + ) 0 hist)

let test_k_ordering () =
  (* Wider LUTs can only help area and depth. *)
  let g = Gen.Arith.adder ~bits:12 in
  let m4 = Lutmap.Mapper.map ~k:4 g in
  let m6 = Lutmap.Mapper.map ~k:6 g in
  Alcotest.(check bool) "k6 area <= k4" true
    (Lutmap.Mapper.lut_count m6 <= Lutmap.Mapper.lut_count m4);
  Alcotest.(check bool) "k6 depth <= k4" true
    (m6.Lutmap.Mapper.depth <= m4.Lutmap.Mapper.depth)

let test_bad_k () =
  Alcotest.check_raises "k too big" (Invalid_argument "Mapper.map: k must be in [2, 8]")
    (fun () -> ignore (Lutmap.Mapper.map ~k:9 (Gen.Arith.adder ~bits:2)))

let prop_to_network_equivalent =
  QCheck.Test.make ~name:"mapped netlist is functionally equivalent" ~count:30
    Util.arb_seed (fun seed ->
      let g = Util.random_network ~pis:6 ~nodes:60 ~pos:4 seed in
      let m = Lutmap.Mapper.map ~k:4 g in
      Util.equivalent_brute g (Lutmap.Mapper.to_network m))

let prop_arith_equivalent =
  QCheck.Test.make ~name:"mapping arithmetic circuits is sound" ~count:6
    (QCheck.int_range 3 6) (fun bits ->
      let g = Gen.Arith.multiplier ~bits in
      Util.equivalent_brute g (Lutmap.Mapper.to_network (Lutmap.Mapper.map ~k:5 g)))

let test_post_mapping_cec () =
  (* The industrial workload: original RTL-ish AIG vs its mapped netlist,
     decided by the simulation engine with SAT fallback. *)
  Util.with_pool (fun pool ->
      let g = Gen.Arith.multiplier ~bits:7 in
      let mapped = Lutmap.Mapper.to_network (Lutmap.Mapper.map ~k:6 g) in
      let miter = Aig.Miter.build g mapped in
      Alcotest.(check bool) "non-trivial miter" false (Aig.Miter.solved miter);
      let c = Simsweep.Engine.check_with_fallback ~pool miter in
      Alcotest.(check bool) "post-mapping check passes" true
        (c.Simsweep.Engine.final = Simsweep.Engine.Proved))

let test_broken_mapping_caught () =
  (* Corrupt one LUT's function: the checker must catch it. *)
  Util.with_pool (fun pool ->
      let g = Gen.Arith.adder ~bits:6 in
      let m = Lutmap.Mapper.map ~k:4 g in
      let broken =
        {
          m with
          Lutmap.Mapper.luts =
            (match m.Lutmap.Mapper.luts with
            | l :: rest -> { l with Lutmap.Mapper.tt = Bv.Tt.bnot l.Lutmap.Mapper.tt } :: rest
            | [] -> []);
        }
      in
      let miter = Aig.Miter.build g (Lutmap.Mapper.to_network broken) in
      match (Simsweep.Engine.check_with_fallback ~pool miter).Simsweep.Engine.final with
      | Simsweep.Engine.Disproved (cex, po) ->
          Alcotest.(check bool) "cex valid" true (Sim.Cex.check miter cex po)
      | Simsweep.Engine.Proved -> Alcotest.fail "broken mapping accepted"
      | Simsweep.Engine.Undecided -> Alcotest.fail "undecided")

let () =
  Alcotest.run "mapper"
    [
      ( "unit",
        [
          Alcotest.test_case "legal mapping" `Quick test_legal_mapping;
          Alcotest.test_case "k ordering" `Quick test_k_ordering;
          Alcotest.test_case "bad k" `Quick test_bad_k;
          Alcotest.test_case "post-mapping CEC" `Quick test_post_mapping_cec;
          Alcotest.test_case "broken mapping caught" `Quick test_broken_mapping_caught;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_to_network_equivalent; prop_arith_equivalent ] );
    ]
