(* Proof certificates: generation, independent SAT validation, tamper
   detection and serialisation. *)

let gen_cert ?config miter =
  Util.with_pool (fun pool -> Simsweep.Certificate.generate ?config ~pool miter)

let forced_internal_config =
  (* Push the flow through G and L so certificates contain real merge
     steps, not just a one-shot P proof. *)
  {
    Simsweep.Config.scaled with
    Simsweep.Config.k_cap_p = 8;
    k_p = 6;
    k_g = 8;
  }

let test_generate_and_validate () =
  let g = Gen.Arith.multiplier ~bits:6 in
  let miter = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let result, cert = gen_cert ~config:forced_internal_config miter in
  Alcotest.(check bool) "engine proved" true
    (result.Simsweep.Engine.outcome = Simsweep.Engine.Proved);
  Alcotest.(check bool) "claims proof" true cert.Simsweep.Certificate.claims_proved;
  Alcotest.(check bool) "has merge steps" true
    (List.exists
       (fun (s : Simsweep.Engine.trace_step) -> s.Simsweep.Engine.trace_merges <> [])
       cert.Simsweep.Certificate.steps);
  match Simsweep.Certificate.validate miter cert with
  | Ok final -> Alcotest.(check bool) "replayed to solved" true (Aig.Miter.solved final)
  | Error e -> Alcotest.failf "validation failed: %s" e

let test_po_step_validates () =
  (* A P-phase-only certificate (wide thresholds). *)
  let g = Gen.Arith.adder ~bits:6 in
  let miter = Aig.Miter.build g (Opt.Resyn.light g) in
  let _, cert = gen_cert miter in
  Alcotest.(check bool) "P step present" true
    (List.exists
       (fun (s : Simsweep.Engine.trace_step) -> s.Simsweep.Engine.trace_pos <> [])
       cert.Simsweep.Certificate.steps);
  match Simsweep.Certificate.validate miter cert with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "validation failed: %s" e

let test_tampered_certificate_rejected () =
  let g = Gen.Arith.multiplier ~bits:6 in
  let miter = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let _, cert = gen_cert ~config:forced_internal_config miter in
  (* Corrupt the first merge: point a node at the complement of its
     representative. *)
  let tampered_steps =
    List.map
      (fun (s : Simsweep.Engine.trace_step) ->
        match s.Simsweep.Engine.trace_merges with
        | (n, l) :: rest ->
            { s with Simsweep.Engine.trace_merges = (n, Aig.Lit.neg l) :: rest }
        | [] -> s)
      cert.Simsweep.Certificate.steps
  in
  let tampered = { cert with Simsweep.Certificate.steps = tampered_steps } in
  match Simsweep.Certificate.validate miter tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered certificate accepted"

let test_wrong_claim_rejected () =
  (* An empty certificate claiming a proof of a non-trivial miter. *)
  let g = Gen.Arith.multiplier ~bits:5 in
  let miter = Aig.Miter.build g (Opt.Xorflip.run g) in
  let fake = { Simsweep.Certificate.steps = []; claims_proved = true } in
  match Simsweep.Certificate.validate miter fake with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fake claim accepted"

let test_serialisation_roundtrip () =
  let g = Gen.Arith.multiplier ~bits:6 in
  let miter = Aig.Miter.build g (Opt.Resyn.resyn2 g) in
  let _, cert = gen_cert ~config:forced_internal_config miter in
  let text = Simsweep.Certificate.to_string cert in
  match Simsweep.Certificate.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok cert' -> (
      Alcotest.(check bool) "same claim" cert.Simsweep.Certificate.claims_proved
        cert'.Simsweep.Certificate.claims_proved;
      Alcotest.(check int) "same step count"
        (List.length cert.Simsweep.Certificate.steps)
        (List.length cert'.Simsweep.Certificate.steps);
      (* The parsed certificate must still validate. *)
      match Simsweep.Certificate.validate miter cert' with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "parsed certificate invalid: %s" e)

let test_parse_errors () =
  let bad s =
    match Simsweep.Certificate.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "";
  bad "nonsense header\n";
  bad "certificate proved\nX 1:2\n";
  bad "certificate proved\nG 1:\n";
  bad "certificate proved\nP oX\n"

let prop_certificates_validate =
  QCheck.Test.make ~name:"generated certificates always validate" ~count:12
    Util.arb_seed (fun seed ->
      let g1 = Util.random_network ~pis:6 ~nodes:50 ~pos:3 seed in
      let miter = Aig.Miter.build g1 (Opt.Xorflip.run g1) in
      let cfg =
        { forced_internal_config with Simsweep.Config.k_cap_p = 5; k_p = 4; k_g = 6 }
      in
      let _, cert = gen_cert ~config:cfg miter in
      match Simsweep.Certificate.validate miter cert with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "certificate"
    [
      ( "unit",
        [
          Alcotest.test_case "generate+validate" `Quick test_generate_and_validate;
          Alcotest.test_case "po steps" `Quick test_po_step_validates;
          Alcotest.test_case "tamper detection" `Quick test_tampered_certificate_rejected;
          Alcotest.test_case "wrong claim" `Quick test_wrong_claim_rejected;
          Alcotest.test_case "serialisation" `Quick test_serialisation_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_certificates_validate ]);
    ]
