bench/main.ml: Aig Analyze Array Bechamel Benchmark Cases Cuts Fun Harness Hashtbl Lazy List Lutmap Measure Par Printf Sat Sim Simsweep Staged String Sys Test Time Toolkit
