bench/harness.ml: Aig Float List Sat Simsweep Unix
