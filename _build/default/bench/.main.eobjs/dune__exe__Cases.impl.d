bench/cases.ml: Aig Gen Hashtbl List Opt
