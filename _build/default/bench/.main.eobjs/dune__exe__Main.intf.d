bench/main.mli:
