(* simsweep-gen: emit benchmark circuits as AIGER files.

   Generates the paper's benchmark families at chosen sizes, optionally
   enlarged with `double` and optimised with the resyn2 stand-in — the full
   workload construction of Table II from the command line. *)

let generate family bits n iters frac regs width double_times optimize out =
  let g =
    match family with
    | `Adder -> Gen.Arith.adder ~bits
    | `Multiplier -> Gen.Arith.multiplier ~bits
    | `Square -> Gen.Arith.square ~bits
    | `Sqrt -> Gen.Arith.sqrt ~bits
    | `Hypot -> Gen.Arith.hypot ~bits
    | `Log2 -> Gen.Arith.log2 ~bits ~frac
    | `Sin -> Gen.Arith.sin ~bits ~iters
    | `Voter -> Gen.Control.voter ~n
    | `Regfile -> Gen.Control.regfile ~regs ~width
    | `Display -> Gen.Control.display ~hbits:bits ~vbits:(max 1 (bits - 1))
  in
  let g = Gen.Double.times double_times g in
  let g = if optimize then Opt.Resyn.resyn2 g else g in
  (match out with
  | Some path -> Aig.Aiger_io.write_file path g
  | None -> print_string (Aig.Aiger_io.to_string g));
  Printf.eprintf "%s\n" (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network g));
  0

open Cmdliner

let family =
  let enum_conv =
    Arg.enum
      [
        ("adder", `Adder); ("multiplier", `Multiplier); ("square", `Square);
        ("sqrt", `Sqrt); ("hypot", `Hypot); ("log2", `Log2); ("sin", `Sin);
        ("voter", `Voter); ("regfile", `Regfile); ("display", `Display);
      ]
  in
  Arg.(required & pos 0 (some enum_conv) None & info [] ~docv:"FAMILY"
         ~doc:"Circuit family: adder, multiplier, square, sqrt, hypot, log2, \
               sin, voter, regfile, display.")

let bits = Arg.(value & opt int 8 & info [ "bits" ] ~docv:"N" ~doc:"Operand width.")
let n = Arg.(value & opt int 15 & info [ "n" ] ~docv:"N" ~doc:"Voter input count.")
let iters = Arg.(value & opt int 8 & info [ "iters" ] ~docv:"N" ~doc:"CORDIC iterations (sin).")
let frac = Arg.(value & opt int 4 & info [ "frac" ] ~docv:"N" ~doc:"Fraction bits (log2).")
let regs = Arg.(value & opt int 8 & info [ "regs" ] ~docv:"N" ~doc:"Registers (regfile).")
let width = Arg.(value & opt int 8 & info [ "width" ] ~docv:"N" ~doc:"Register width (regfile).")

let double_times =
  Arg.(value & opt int 0 & info [ "double" ] ~docv:"N"
         ~doc:"Apply the `double` enlargement N times.")

let optimize =
  Arg.(value & flag & info [ "optimize" ]
         ~doc:"Run the resyn2 stand-in on the result (produces the second \
               circuit of a CEC miter).")

let out =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output AIGER file (stdout when omitted).")

let cmd =
  let doc = "generate benchmark circuits for the CEC engine" in
  Cmd.v
    (Cmd.info "simsweep-gen" ~doc)
    Term.(
      const generate $ family $ bits $ n $ iters $ frac $ regs $ width
      $ double_times $ optimize $ out)

let () = exit (Cmd.eval' cmd)
