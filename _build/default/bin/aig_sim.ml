(* simsweep-sim: simulate an AIGER file.

   Reads input vectors (one per line, LSB-first over the PIs, '0'/'1'
   characters) from stdin — or generates random ones — and prints the
   output vector for each.  The classic aigsim workflow, useful for
   cross-checking against other tools. *)

let simulate file random_count seed =
  let g = Aig.Aiger_io.read_file file in
  let n_pi = Aig.Network.num_pis g in
  let run cex =
    let outs =
      Array.map (fun l -> Sim.Cex.eval_lit g cex l) (Aig.Network.pos g)
    in
    Array.iter (fun v -> print_char (if v then '1' else '0')) cex;
    print_char ' ';
    Array.iter (fun v -> print_char (if v then '1' else '0')) outs;
    print_newline ()
  in
  if random_count > 0 then begin
    let rng = Sim.Rng.create ~seed:(Int64.of_int seed) in
    for _ = 1 to random_count do
      run (Array.init n_pi (fun _ -> Sim.Rng.bool rng))
    done;
    0
  end
  else begin
    (try
       while true do
         let line = String.trim (input_line stdin) in
         if line <> "" then begin
           if String.length line <> n_pi then begin
             Printf.eprintf "error: expected %d bits, got %d\n" n_pi
               (String.length line);
             exit 2
           end;
           run (Array.init n_pi (fun i -> line.[i] = '1'))
         end
       done
     with End_of_file -> ());
    0
  end

open Cmdliner

let file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"AIGER file.")

let random_count =
  Arg.(value & opt int 0 & info [ "r"; "random" ] ~docv:"N"
         ~doc:"Simulate N random vectors instead of reading stdin.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")

let cmd =
  let doc = "simulate an AIGER file on input vectors" in
  Cmd.v (Cmd.info "simsweep-sim" ~doc) Term.(const simulate $ file $ random_count $ seed)

let () = exit (Cmd.eval' cmd)
