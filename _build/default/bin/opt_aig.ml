(* simsweep-opt: optimise an AIGER file with the resyn2 stand-in passes. *)

let optimize passes input output =
  let g = Aig.Aiger_io.read_file input in
  Printf.eprintf "before: %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network g));
  let apply g = function
    | `Balance -> Opt.Balance.run g
    | `Rewrite -> Opt.Rewrite.run g
    | `Refactor -> Opt.Refactor.run g
    | `Xorflip -> Opt.Xorflip.run g
    | `Resyn2 -> Opt.Resyn.resyn2 g
    | `Light -> Opt.Resyn.light g
  in
  let g = List.fold_left apply g passes in
  Printf.eprintf "after:  %s\n"
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network g));
  (match output with
  | Some path -> Aig.Aiger_io.write_file path g
  | None -> print_string (Aig.Aiger_io.to_string g));
  0

open Cmdliner

let passes =
  let enum_conv =
    Arg.enum
      [
        ("balance", `Balance); ("rewrite", `Rewrite); ("refactor", `Refactor);
        ("xorflip", `Xorflip); ("resyn2", `Resyn2); ("light", `Light);
      ]
  in
  Arg.(value & opt_all enum_conv [ `Resyn2 ] & info [ "p"; "pass" ] ~docv:"PASS"
         ~doc:"Pass to run (repeatable): balance, rewrite, refactor, \
               xorflip, resyn2, light.")

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Input AIGER file.")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output AIGER file (stdout when omitted).")

let cmd =
  let doc = "optimise an AIG with the resyn2 stand-in" in
  Cmd.v (Cmd.info "simsweep-opt" ~doc) Term.(const optimize $ passes $ input $ output)

let () = exit (Cmd.eval' cmd)
