(* simsweep-cec: combinational equivalence checker CLI.

   Checks two AIGER files (or a generated benchmark case) with a selectable
   engine: the simulation-based engine (the paper's contribution), the SAT
   sweeper baseline, the BDD engine, the portfolio, or the combined
   engine+SAT flow of Table II. *)

let read_inputs file1 file2 suite scale post_double =
  let enlarge (name, miter) =
    if post_double <= 0 then (name, miter)
    else
      ( Printf.sprintf "%s(x%d)" name (1 lsl post_double),
        Gen.Double.times post_double miter )
  in
  match (file1, file2, suite) with
  | Some f1, Some f2, None ->
      let g1 = Aig.Aiger_io.read_file f1 and g2 = Aig.Aiger_io.read_file f2 in
      Ok (enlarge (Printf.sprintf "%s vs %s" f1 f2, Aig.Miter.build g1 g2))
  | Some f1, None, None ->
      (* A single file is interpreted as an already-built miter. *)
      Ok (enlarge (f1, Aig.Aiger_io.read_file f1))
  | None, None, Some name ->
      let case = Gen.Suite.build ~scale name in
      Ok (enlarge ("suite:" ^ name, case.Gen.Suite.miter))
  | _ -> Error "give either FILE [FILE2] or --suite NAME"

let describe_outcome = function
  | Simsweep.Engine.Proved -> "EQUIVALENT"
  | Simsweep.Engine.Disproved (_, po) -> Printf.sprintf "NOT EQUIVALENT (output %d)" po
  | Simsweep.Engine.Undecided -> "UNDECIDED"

let engine_tag = function
  | `Sim -> "sim"
  | `Combined -> "combined"
  | `Sat -> "sat"
  | `Bdd -> "bdd"
  | `Partitioned -> "partitioned"
  | `Portfolio -> "portfolio"
  | `Wordsweep -> "wordsweep"

(* Client mode: ship the miter to a running daemon (simsweep-serve) and
   let it check — repeated checks of the same cones hit the daemon's
   cross-request equivalence cache. *)
let run_remote addr engine_str name miter stats_json =
  match Serve.Client.connect (Serve.Client.parse_addr addr) with
  | Error e ->
      Printf.eprintf "error: cannot connect to %s: %s\n" addr e;
      2
  | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let req =
        Serve.Protocol.Cec
          {
            aiger = Aig.Aiger_io.to_binary_string miter;
            engine = engine_str;
            timeout_s = None;
          }
      in
      (match Serve.Client.request c req with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          2
      | Ok r ->
          Printf.printf "%s  (%.3fs on %s; cache: %d hits, %d misses)\n"
            r.Serve.Protocol.output r.Serve.Protocol.elapsed_s addr
            r.Serve.Protocol.cache_hits r.Serve.Protocol.cache_misses;
          (match stats_json with
          | Some file ->
              let open Simsweep.Telemetry in
              write_file file
                (Obj
                   [
                     ("name", String name);
                     ("engine", String engine_str);
                     ("server", String addr);
                     ("output", String r.Serve.Protocol.output);
                     ("ok", Bool r.Serve.Protocol.ok);
                     ("time_s", Float r.Serve.Protocol.elapsed_s);
                     ("cache_hits", Int r.Serve.Protocol.cache_hits);
                     ("cache_misses", Int r.Serve.Protocol.cache_misses);
                   ])
          | None -> ());
          if not r.Serve.Protocol.ok then 2
          else
            let out = r.Serve.Protocol.output in
            let starts p =
              String.length out >= String.length p
              && String.sub out 0 (String.length p) = p
            in
            if starts "NOT EQUIVALENT" then 1
            else if starts "EQUIVALENT" then 0
            else 3)

(* Sharded mode: partition the miter, fork [shard_n] worker processes and
   coordinate them (work-stealing, cube-and-conquer on stalls).  The
   coordinator itself needs no domain pool. *)
let run_shard shard_n transport name miter num_domains verbose stats_json =
  let worker_domains =
    match num_domains with Some j -> max 1 (j / max 1 shard_n) | None -> 1
  in
  let config =
    {
      Shard.Check.default_config with
      workers = shard_n;
      worker_domains;
      transport;
    }
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf "miter %s: %s\n%!" name
    (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network miter));
  let outcome, st = Shard.Check.check ~config miter in
  let elapsed = Unix.gettimeofday () -. t0 in
  if verbose then
    Printf.printf
      "shard: %d shards (%d groups, %d split) over %d workers, %d steals, %d \
       cubes solved, %d clauses shared, %d crashed\n"
      st.Shard.Stats.shards st.Shard.Stats.groups st.Shard.Stats.split_groups
      st.Shard.Stats.workers
      (Array.fold_left ( + ) 0 (Shard.Stats.steals st))
      st.Shard.Stats.cubes_solved st.Shard.Stats.clauses_shared
      st.Shard.Stats.workers_crashed;
  if verbose then
    Printf.printf
      "data plane: %s transport, %d B tx / %d B rx in %d+%d frames (%d \
       batched flushes), %d shm hits / %d fallbacks, %d segments created / \
       %d unlinked, %d warm + %d cold starts\n"
      st.Shard.Stats.transport st.Shard.Stats.bytes_tx st.Shard.Stats.bytes_rx
      st.Shard.Stats.frames_tx st.Shard.Stats.frames_rx
      st.Shard.Stats.batched_flushes st.Shard.Stats.shm_hits
      st.Shard.Stats.shm_fallbacks st.Shard.Stats.segments_created
      st.Shard.Stats.segments_unlinked st.Shard.Stats.warm_starts
      st.Shard.Stats.cold_starts;
  Printf.printf "%s  (%.3fs)\n" (describe_outcome outcome) elapsed;
  (match stats_json with
  | Some file ->
      let open Simsweep.Telemetry in
      let j =
        Obj
          [
            ("name", String name);
            ("engine", String "shard");
            ("outcome", String (outcome_string outcome));
            ("time_s", Float elapsed);
            ( "miter",
              Obj
                [
                  ("pis", Int (Aig.Network.num_pis miter));
                  ("pos", Int (Aig.Network.num_pos miter));
                  ("ands", Int (Aig.Network.num_ands miter));
                ] );
            ("shard", Shard.Stats.to_json st);
          ]
      in
      (try
         write_file file j;
         if verbose then Printf.printf "stats written to %s\n" file
       with Sys_error msg ->
         Printf.eprintf "cec: cannot write stats file: %s\n" msg)
  | None -> ());
  match outcome with
  | Simsweep.Engine.Proved -> 0
  | Simsweep.Engine.Disproved _ -> 1
  | Simsweep.Engine.Undecided -> 3

let run_check engine file1 file2 suite scale post_double num_domains race
    verbose certify stats_json server no_simplify shard_n shard_transport
    max_frame_mb =
  Serve.Protocol.set_max_frame (max_frame_mb * 1024 * 1024);
  match read_inputs file1 file2 suite scale post_double with
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      2
  | Ok (name, miter) when server <> None ->
      (* --shard N rides along to the daemon as the engine string, so a
         warm daemon answers shard requests from its persistent worker
         pool instead of this process forking cold workers. *)
      let engine_str =
        if shard_n > 0 then Printf.sprintf "shard.%d" shard_n
        else engine_tag engine
      in
      run_remote (Option.get server) engine_str name miter stats_json
  | Ok (name, miter) when shard_n > 0 ->
      run_shard shard_n shard_transport name miter num_domains verbose
        stats_json
  | Ok (name, miter) ->
      if verbose then begin
        Logs.set_reporter (Logs.format_reporter ());
        Logs.set_level (Some Logs.Debug)
      end;
      (* A racing portfolio spawns two racer domains next to the pool:
         unless the user pinned the pool size, shrink it so pool workers
         plus racers stay within the recommended domain count. *)
      let num_domains =
        match (num_domains, race, engine) with
        | None, true, `Portfolio ->
            Some (Simsweep.Portfolio.recommended_pool_domains ())
        | _ -> num_domains
      in
      let pool = Par.Pool.create ?num_domains () in
      Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
      let t0 = Unix.gettimeofday () in
      Printf.printf "miter %s: %s\n%!" name
        (Format.asprintf "%a" Aig.Stats.pp (Aig.Stats.of_network miter));
      (* Per-engine telemetry fields for the --stats-json snapshot. *)
      let telemetry = ref [] in
      let outcome =
        match engine with
        | `Sim ->
            let r = Simsweep.Engine.run ~config:Simsweep.Config.scaled ~pool miter in
            if verbose then
              Printf.printf "engine: reduced %.1f%% | %s\n"
                (Simsweep.Engine.reduction_percent r)
                (Format.asprintf "%a" Simsweep.Stats.pp r.Simsweep.Engine.stats);
            telemetry := [ ("run", Simsweep.Telemetry.of_run r) ];
            r.Simsweep.Engine.outcome
        | `Combined ->
            let c =
              Simsweep.Engine.check_with_fallback ~config:Simsweep.Config.scaled
                ~transfer_classes:true ~pool miter
            in
            if verbose then
              Printf.printf "engine: reduced %.1f%%, SAT fallback %s\n"
                (Simsweep.Engine.reduction_percent c.Simsweep.Engine.engine)
                (if c.Simsweep.Engine.sat_outcome = None then "not needed" else "used");
            telemetry := [ ("combined", Simsweep.Telemetry.of_combined c) ];
            c.Simsweep.Engine.final
        | `Sat ->
            let config =
              { Sat.Sweep.default_config with simplify = not no_simplify }
            in
            let sat_outcome, sat_stats = Sat.Sweep.check ~config ~pool miter in
            telemetry := [ ("sat", Simsweep.Telemetry.of_sat sat_stats) ];
            (match sat_outcome with
            | Sat.Sweep.Equivalent -> Simsweep.Engine.Proved
            | Sat.Sweep.Inequivalent (cex, po) -> Simsweep.Engine.Disproved (cex, po)
            | Sat.Sweep.Undecided -> Simsweep.Engine.Undecided)
        | `Bdd -> (
            match Bdd.check miter with
            | `Equivalent -> Simsweep.Engine.Proved
            | `Inequivalent (cex, po) -> Simsweep.Engine.Disproved (cex, po)
            | `Node_limit | `Timeout -> Simsweep.Engine.Undecided)
        | `Partitioned ->
            let outcome, ngroups =
              Simsweep.Partition.check ~config:Simsweep.Config.scaled ~pool miter
            in
            if verbose then Printf.printf "partition: %d groups\n" ngroups;
            telemetry := [ ("partition_groups", Simsweep.Telemetry.Int ngroups) ];
            outcome
        | `Wordsweep ->
            let outcome, st =
              Word.Sweep.check ~config:Simsweep.Config.scaled ~pool miter
            in
            if verbose then
              Printf.printf
                "wordsweep: %.1f%% covered, %d chains, %d words proved, %d \
                 bits merged, fallback %s (%.0f%% of miter)\n"
                st.Word.Sweep.coverage_percent st.Word.Sweep.chains
                st.Word.Sweep.words_proved st.Word.Sweep.bits_merged
                (if st.Word.Sweep.fallback then "used" else "not needed")
                (100. *. st.Word.Sweep.fallback_ratio);
            telemetry := [ ("wordsweep", Word.Sweep.to_json st) ];
            outcome
        | `Portfolio ->
            let mode = if race then `Race else `Sequential in
            let r = Simsweep.Portfolio.check ~mode ~pool miter in
            if verbose then begin
              Printf.printf "portfolio mode: %s%s\n"
                (Simsweep.Portfolio.mode_name r.Simsweep.Portfolio.mode_used)
                (if race && r.Simsweep.Portfolio.mode_used = `Sequential then
                   " (race degraded: not enough cores)"
                 else "");
              (match r.Simsweep.Portfolio.winner with
              | Some e ->
                  Printf.printf "portfolio winner: %s\n"
                    (Simsweep.Portfolio.engine_name e)
              | None -> ());
              List.iter
                (fun (e, t) ->
                  Printf.printf "  %s: %.3fs\n"
                    (Simsweep.Portfolio.engine_name e) t)
                r.Simsweep.Portfolio.per_engine_time;
              match r.Simsweep.Portfolio.cancel_latency with
              | Some l -> Printf.printf "  cancel latency: %.3fs\n" l
              | None -> ()
            end;
            telemetry :=
              [ ("portfolio", Simsweep.Telemetry.of_portfolio r) ];
            r.Simsweep.Portfolio.outcome
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      Printf.printf "%s  (%.3fs)\n" (describe_outcome outcome) elapsed;
      (match stats_json with
      | Some file ->
          let open Simsweep.Telemetry in
          let j =
            Obj
              ([
                 ("name", String name);
                 ("engine", String (engine_tag engine));
                 ("outcome", String (outcome_string outcome));
                 ("time_s", Float elapsed);
                 ( "miter",
                   Obj
                     [
                       ("pis", Int (Aig.Network.num_pis miter));
                       ("pos", Int (Aig.Network.num_pos miter));
                       ("ands", Int (Aig.Network.num_ands miter));
                     ] );
                 ("pool", of_pool (Par.Pool.stats pool));
               ]
              @ !telemetry)
          in
          (try
             write_file file j;
             if verbose then Printf.printf "stats written to %s\n" file
           with Sys_error msg ->
             Printf.eprintf "cec: cannot write stats file: %s\n" msg)
      | None -> ());
      (if certify then
         match outcome with
         | Simsweep.Engine.Proved -> (
             let _, cert =
               Simsweep.Certificate.generate ~config:Simsweep.Config.scaled ~pool
                 miter
             in
             if not cert.Simsweep.Certificate.claims_proved then
               print_endline
                 "certificate: engine alone could not complete a certificate \
                  (SAT fallback was needed)"
             else
               match Simsweep.Certificate.validate miter cert with
               | Ok _ ->
                   Printf.printf "certificate: %d steps validated independently\n"
                     (List.length cert.Simsweep.Certificate.steps)
               | Error e -> Printf.printf "certificate INVALID: %s\n" e)
         | _ -> print_endline "certificate: only produced for proved miters");
      (match outcome with
      | Simsweep.Engine.Disproved (cex, po) when verbose ->
          Printf.printf "counter-example (output %d): " po;
          Array.iter (fun b -> print_char (if b then '1' else '0')) cex;
          print_newline ()
      | _ -> ());
      (match outcome with
      | Simsweep.Engine.Proved -> 0
      | Simsweep.Engine.Disproved _ -> 1
      | Simsweep.Engine.Undecided -> 3)

open Cmdliner

let engine =
  let enum_conv =
    Arg.enum
      [
        ("sim", `Sim); ("sat", `Sat); ("bdd", `Bdd); ("portfolio", `Portfolio);
        ("combined", `Combined); ("partitioned", `Partitioned);
        ("wordsweep", `Wordsweep);
      ]
  in
  Arg.(value & opt enum_conv `Combined & info [ "e"; "engine" ] ~docv:"ENGINE"
         ~doc:"Checking engine: sim (simulation-based), sat (SAT sweeping), \
               bdd, portfolio, combined (sim + SAT fallback, the paper's \
               Table II flow), partitioned (combined flow per \
               support-disjoint output group), or wordsweep (word-level \
               hybrid sweeping with bit-level fallback).")

let file1 =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"First AIGER file (or a miter when FILE2 is omitted).")

let file2 =
  Arg.(value & pos 1 (some file) None & info [] ~docv:"FILE2" ~doc:"Second AIGER file.")

let suite =
  Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"NAME"
         ~doc:"Check a generated Table II benchmark case instead of files \
               (hyp, log2, multiplier, sqrt, square, voter, sin, ac97_ctrl, \
               vga_lcd).")

let scale =
  Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N"
         ~doc:"Doubling scale for --suite cases (0 disables doubling).")

let post_double =
  Arg.(value & opt int 0 & info [ "post-double" ] ~docv:"K"
         ~doc:"Enlarge the built miter by K doublings ($(b,2^K) disjoint \
               copies) before checking — the paper's enlargement method, \
               applied to the miter itself; useful for exercising --shard \
               on giant instances.")

let num_domains =
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N"
         ~doc:"Worker domains (default: machine-dependent).")

let race =
  Arg.(value & flag & info [ "race" ]
         ~doc:"Race the portfolio engines concurrently (with --engine \
               portfolio): BDD, SAT sweeping and word-level sweeping each \
               get a dedicated domain next to the pool-parallel simulation \
               engine; the first conclusive verdict cancels the losers.  \
               Degrades to the sequential portfolio when the machine lacks \
               cores.")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print engine details.")

let certify =
  Arg.(value & flag & info [ "certify" ]
         ~doc:"After a proof, regenerate it with a merge-trace certificate \
               and validate every step independently with the SAT solver.")

let stats_json =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Write a machine-readable telemetry snapshot (outcome, \
               per-phase times, window/word counts, pool utilization, SAT \
               effort) to FILE as JSON.")

let no_simplify =
  Arg.(value & flag & info [ "no-simplify" ]
         ~doc:"Disable SAT-solver preprocessing (BVE, subsumption, \
               equivalent literals, XOR/Gauss, probing) in the SAT \
               sweeping engine.  Verdicts are identical either way; the \
               flag exists for A/B timing and debugging.")

let server =
  Arg.(value & opt (some string) None & info [ "server" ] ~docv:"ADDR"
         ~doc:"Check on a running simsweep-serve daemon at ADDR (a Unix \
               socket path or HOST:PORT) instead of in-process; repeated \
               checks hit the daemon's cross-request equivalence cache.")

let shard_n =
  Arg.(value & opt int 0 & info [ "shard" ] ~docv:"N"
         ~doc:"Check with N coordinated worker processes instead of a \
               single in-process engine: the miter is partitioned into \
               shards (output-cone groups, large groups split at PO \
               boundaries), workers pull shards work-stealing style, and a \
               shard whose SAT tail stalls is cut into cubes fanned across \
               idle workers with learnt-clause sharing (cube-and-conquer).  \
               Overrides --engine; 0 disables.  With --server, the shard \
               request is served by the daemon's warm worker pool.")

let shard_transport =
  let enum_conv = Arg.enum [ ("shm", `Shm); ("inline", `Inline) ] in
  Arg.(value & opt enum_conv `Shm & info [ "shard-transport" ] ~docv:"MODE"
         ~doc:"How --shard ships AIGER payloads to workers: shm \
               (shared-memory segments, descriptors on the wire) or inline \
               (payload bytes in the frame).  Verdicts are identical either \
               way; inline exists for A/B measurement and as the fallback \
               when no shm directory is usable.")

let max_frame_mb =
  Arg.(value & opt int 256 & info [ "max-frame-mb" ] ~docv:"MB"
         ~doc:"Protocol frame cap (header + binary payload) in megabytes \
               for shard and --server traffic; bounds the largest AIGER a \
               single frame may carry.")

let cmd =
  let doc = "simulation-based parallel sweeping equivalence checker" in
  Cmd.v
    (Cmd.info "simsweep-cec" ~doc)
    Term.(
      const run_check $ engine $ file1 $ file2 $ suite $ scale $ post_double
      $ num_domains $ race $ verbose $ certify $ stats_json $ server
      $ no_simplify $ shard_n $ shard_transport $ max_frame_mb)

let () =
  (* Re-exec'ed children of `--shard` coordinators become workers here. *)
  Shard.Worker.maybe_become_worker ();
  (* Fourth portfolio racer (race mode only). *)
  Word.Sweep.register ();
  exit (Cmd.eval' cmd)
