(* simsweep-fuzz: differential fuzzing of the CEC engines.

   Random miters with a known expected verdict are checked by every
   engine; any disagreement, non-replaying counter-example or invalid
   certificate is shrunk to a minimal AIGER reproducer.  Fully
   deterministic from --seed: the case stream, verdict log and shrink
   sequence are identical run-to-run.

   Exit codes: 0 clean, 1 oracle failures found (repros written),
   4 self-test machinery failure. *)

let run seed cases minutes aig_dir out_dir self_test num_domains bdd_node_limit
    shrink_budget certify_every quiet shard_transport =
  (* The oracle's portfolio/race members should exercise the full racer
     set, wordsweep included. *)
  Word.Sweep.register ();
  let pool = Par.Pool.create ?num_domains () in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  let log line = if not quiet then print_endline line in
  let config =
    {
      Fuzz.Runner.default_config with
      Fuzz.Runner.seed = Int64.of_int seed;
      cases;
      out_dir;
      bdd_node_limit;
      shrink_budget;
      certify_every;
      shard_transport;
    }
  in
  let self_test_failed = ref false in
  if self_test then begin
    match
      Fuzz.Runner.self_test ~log ~pool ~out_dir ~seed:(Int64.of_int seed) ()
    with
    | Ok repro ->
        Printf.printf "self-test: fault detected and shrunk %d -> %d AND nodes\n%!"
          repro.Fuzz.Report.original_ands repro.Fuzz.Report.shrunk_ands
    | Error msg ->
        Printf.eprintf "%s\n%!" msg;
        self_test_failed := true
  end;
  if !self_test_failed then 4
  else begin
    let summary =
      match (aig_dir, minutes) with
      | Some dir, _ -> Fuzz.Runner.run_dir ~log ~pool ~dir config
      | None, Some minutes ->
          Fuzz.Runner.run_soak ~log ~progress:print_endline ~pool ~minutes
            config
      | None, None -> Fuzz.Runner.run ~log ~pool config
    in
    Printf.printf "fuzz: %d cases, %d failures (seed %d)\n%!"
      summary.Fuzz.Runner.cases_run summary.Fuzz.Runner.failed_cases seed;
    List.iter
      (fun r ->
        Printf.printf "  repro: %s (%d -> %d AND nodes)\n%!" r.Fuzz.Report.path
          r.Fuzz.Report.original_ands r.Fuzz.Report.shrunk_ands)
      summary.Fuzz.Runner.repros;
    if summary.Fuzz.Runner.failed_cases > 0 then 1 else 0
  end

open Cmdliner

let seed =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
         ~doc:"Run seed. Every case, verdict and shrink step derives from it \
               deterministically, so any failure replays from this one number.")

let cases =
  Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc:"Number of fuzz cases.")

let minutes =
  Arg.(value & opt (some float) None & info [ "minutes" ] ~docv:"MIN"
         ~doc:"Soak mode: stream cases for MIN minutes of wall clock instead \
               of a fixed count, with a progress line every ~15s. The case \
               stream is the same deterministic sequence as --cases, so a \
               soak failure at case N replays with --cases N+1.")

let aig_dir =
  Arg.(value & opt (some dir) None & info [ "aig-dir" ] ~docv:"DIR"
         ~doc:"Ingest mode: run the oracle over every .aig/.aag miter in DIR \
               (sorted; unreadable files are skipped with a warning) instead \
               of generating cases. Overrides --cases and --minutes.")

let out_dir =
  Arg.(value & opt string "fuzz-out" & info [ "out" ] ~docv:"DIR"
         ~doc:"Directory for shrunk AIGER reproducers.")

let self_test =
  Arg.(value & flag & info [ "self-test" ]
         ~doc:"First verify the harness itself: inject a known fault plus a \
               deliberately lying engine, and require the oracle to flag it \
               and the shrinker to reduce the miter to at most 20% of its \
               nodes, with the written repro still reproducing.")

let num_domains =
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N"
         ~doc:"Worker domains (default: machine-dependent).")

let bdd_node_limit =
  Arg.(value & opt int 200_000 & info [ "bdd-node-limit" ] ~docv:"N"
         ~doc:"BDD engine node budget per case.")

let shrink_budget =
  Arg.(value & opt int 400 & info [ "shrink-budget" ] ~docv:"N"
         ~doc:"Oracle evaluations the shrinker may spend per failure.")

let certify_every =
  Arg.(value & opt int 10 & info [ "certify-every" ] ~docv:"N"
         ~doc:"Replay a proof certificate on every Nth case (0 disables).")

let quiet =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-case log lines.")

let shard_transport =
  let enum_conv = Arg.enum [ ("shm", `Shm); ("inline", `Inline) ] in
  Arg.(value & opt enum_conv `Shm & info [ "shard-transport" ] ~docv:"MODE"
         ~doc:"Payload transport of the shard oracle engine: shm \
               (shared-memory segments) or inline (bytes in the frame).  \
               Fuzzing under both modes proves the transports agree on \
               every verdict.")

let cmd =
  let doc = "differential fuzzing of the CEC engines" in
  Cmd.v
    (Cmd.info "simsweep-fuzz" ~doc)
    Term.(
      const run $ seed $ cases $ minutes $ aig_dir $ out_dir $ self_test
      $ num_domains $ bdd_node_limit $ shrink_budget $ certify_every $ quiet
      $ shard_transport)

let () =
  (* The oracle's shard engine re-execs this binary to make its workers. *)
  Shard.Worker.maybe_become_worker ();
  exit (Cmd.eval' cmd)
