(* simsweep-serve: the persistent sweep daemon, and a script client.

   Daemon mode (default): listen on a Unix socket or TCP port, serve
   concurrent shell-script and direct-CEC requests with one shared pool
   and one cross-request equivalence cache.

   Client mode (--connect): send a shell script to a running daemon and
   print the response — the scripting companion to [simsweep-cec
   --server]. *)

let serve socket tcp cache_entries cache_mb timeout num_domains max_frame_mb =
  let addr =
    match tcp with
    | Some spec -> (
        match Serve.Client.parse_addr spec with
        | Serve.Server.Tcp _ as a -> a
        | Serve.Server.Unix_path _ ->
            prerr_endline "error: --tcp wants HOST:PORT";
            exit 2)
    | None -> Serve.Server.Unix_path socket
  in
  let pool =
    match num_domains with
    | Some n -> Some (Par.Pool.create ~num_domains:n ())
    | None -> None
  in
  let config =
    {
      Serve.Server.addr;
      cache_entries;
      cache_bytes = cache_mb * 1_000_000;
      default_timeout_s = timeout;
      max_frame_bytes = max_frame_mb * 1024 * 1024;
      pool;
    }
  in
  let srv =
    match Serve.Server.start ~config () with
    | srv -> srv
    | exception Failure e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
  in
  (match Serve.Server.sockaddr srv with
  | Unix.ADDR_UNIX path -> Printf.printf "listening on %s\n%!" path
  | Unix.ADDR_INET (ip, port) ->
      Printf.printf "listening on %s:%d\n%!" (Unix.string_of_inet_addr ip) port);
  Serve.Server.wait srv;
  0

let run_client addr script timeout =
  match Serve.Client.connect (Serve.Client.parse_addr addr) with
  | Error e ->
      Printf.eprintf "error: cannot connect to %s: %s\n" addr e;
      2
  | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      let req = Serve.Protocol.Script { script; timeout_s = timeout } in
      (match Serve.Client.request c req with
      | Error e ->
          Printf.eprintf "error: %s\n" e;
          2
      | Ok r ->
          print_string r.Serve.Protocol.output;
          if
            r.Serve.Protocol.output <> ""
            && r.Serve.Protocol.output.[String.length r.Serve.Protocol.output - 1]
               <> '\n'
          then print_newline ();
          if r.Serve.Protocol.ok then 0
          else begin
            Printf.eprintf "error: %s\n" r.Serve.Protocol.output;
            2
          end)

let main connect script script_file socket tcp cache_entries cache_mb timeout
    num_domains max_frame_mb =
  match connect with
  | Some addr -> (
      match (script, script_file) with
      | Some s, None -> run_client addr s timeout
      | None, Some f -> (
          match In_channel.with_open_bin f In_channel.input_all with
          | s -> run_client addr s timeout
          | exception Sys_error e ->
              Printf.eprintf "error: %s\n" e;
              2)
      | None, None -> run_client addr (In_channel.input_all stdin) timeout
      | Some _, Some _ ->
          prerr_endline "error: give --script or a FILE, not both";
          2)
  | None ->
      serve socket tcp cache_entries cache_mb timeout num_domains max_frame_mb

open Cmdliner

let connect =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"ADDR"
         ~doc:"Client mode: send a script to the daemon at ADDR (a socket \
               path or HOST:PORT) instead of serving.")

let script =
  Arg.(value & opt (some string) None & info [ "script" ] ~docv:"TEXT"
         ~doc:"With --connect: the script text to run (default: read a \
               FILE argument or stdin).")

let script_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"With --connect: script file to send.")

let socket =
  Arg.(value & opt string "simsweep.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path to listen on.")

let tcp =
  Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Listen on TCP instead of a Unix socket (port 0 picks an \
               ephemeral port, printed on startup).")

let cache_entries =
  Arg.(value & opt int 1_000_000 & info [ "cache-entries" ] ~docv:"N"
         ~doc:"Equivalence-cache entry cap (PO verdicts + proved pairs).")

let cache_mb =
  Arg.(value & opt int 256 & info [ "cache-mb" ] ~docv:"MB"
         ~doc:"Equivalence-cache memory cap in megabytes (cone keys can be \
               large, so the entry cap alone does not bound memory).")

let timeout =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
         ~doc:"Daemon: default per-request deadline; client: deadline sent \
               with the request.")

let num_domains =
  Arg.(value & opt (some int) None & info [ "j"; "domains" ] ~docv:"N"
         ~doc:"Worker domains of the shared pool (default: \
               machine-dependent).")

let max_frame_mb =
  Arg.(value & opt int 256 & info [ "max-frame-mb" ] ~docv:"MB"
         ~doc:"Protocol frame cap (header + binary payload) in megabytes; \
               bounds the largest AIGER a request may carry.")

let cmd =
  let doc = "persistent sweep daemon (CEC as a service)" in
  Cmd.v
    (Cmd.info "simsweep-serve" ~doc)
    Term.(
      const main $ connect $ script $ script_file $ socket $ tcp
      $ cache_entries $ cache_mb $ timeout $ num_domains $ max_frame_mb)

let () =
  (* A daemon hosting shard requests re-execs itself as the worker, so
     the worker hook must run first; registering the shard engine makes
     "shard.N" resolvable from Cec requests and served scripts. *)
  Shard.Worker.maybe_become_worker ();
  Shard.Register.shell ();
  exit (Cmd.eval' cmd)
