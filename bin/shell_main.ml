(* simsweep-shell: interactive ABC-style shell over the toolkit.

     dune exec bin/shell_main.exe                 # interactive
     dune exec bin/shell_main.exe -- script.ss    # run a script file
     dune exec bin/shell_main.exe -- -c "gen multiplier 8; store a; resyn2; miter a; cec"
*)

let interactive state =
  (try
     while true do
       print_string "simsweep> ";
       let line = read_line () in
       if String.trim line = "quit" || String.trim line = "exit" then raise Exit;
       match Shell.Command.exec state line with
       | Ok "" -> ()
       | Ok out -> print_endline out
       | Error e -> Printf.printf "error: %s\n" e
     done
   with End_of_file | Exit -> ());
  0

let () =
  (* Children spawned by `cec shard` re-exec this binary as workers. *)
  Shard.Worker.maybe_become_worker ();
  Shard.Register.shell ();
  let state = Shell.Command.create () in
  let code =
    match Array.to_list Sys.argv with
    | [ _ ] -> interactive state
    | [ _; "-c"; script ] | [ _; "--command"; script ] -> (
        match Shell.Command.exec_script state script with
        | Ok out ->
            print_string out;
            0
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            1)
    | [ _; file ] -> (
        let ic = open_in file in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Shell.Command.exec_script state text with
        | Ok out ->
            print_string out;
            0
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            1)
    | _ ->
        prerr_endline "usage: simsweep-shell [SCRIPT | -c COMMANDS]";
        2
  in
  exit code
