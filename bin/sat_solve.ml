(* simsweep-sat: standalone DIMACS SAT solver on the CDCL core.

     dune exec bin/sat_solve.exe -- problem.cnf
     dune exec bin/sat_solve.exe -- --miter design.aag   # export/check a miter

   Prints the conventional "s SATISFIABLE"/"s UNSATISFIABLE" verdict and a
   model line; exit codes follow the SAT-competition convention
   (10 = SAT, 20 = UNSAT). *)

let solve_file path conflict_limit dump no_simplify =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let text =
    if Filename.check_suffix path ".cnf" then text
    else begin
      (* Treat anything else as an AIGER miter to convert. *)
      let g = Aig.Aiger_io.of_string text in
      Sat.Dimacs.of_miter g
    end
  in
  if dump then begin
    print_string text;
    0
  end
  else begin
    let solver = Sat.Solver.create () in
    match Sat.Dimacs.load solver text with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        2
    | Ok false ->
        print_endline "s UNSATISFIABLE";
        20
    | Ok true -> (
        if not no_simplify then Sat.Solver.simplify solver;
        match Sat.Solver.solve ~conflict_limit solver with
        | Sat.Solver.Unsat ->
            print_endline "s UNSATISFIABLE";
            20
        | Sat.Solver.Unknown ->
            print_endline "s UNKNOWN";
            0
        | Sat.Solver.Sat ->
            print_endline "s SATISFIABLE";
            print_string "v";
            for v = 0 to Sat.Solver.num_vars solver - 1 do
              Printf.printf " %d"
                (if Sat.Solver.model_value solver v then v + 1 else -(v + 1))
            done;
            print_endline " 0";
            10)
  end

open Cmdliner

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"DIMACS .cnf file, or an AIGER miter to convert and solve.")

let conflict_limit =
  Arg.(value & opt int max_int & info [ "C"; "conflicts" ] ~docv:"N"
         ~doc:"Conflict budget (prints s UNKNOWN when exhausted).")

let dump =
  Arg.(value & flag & info [ "dump-cnf" ]
         ~doc:"Print the DIMACS formula instead of solving (useful with an \
               AIGER miter, to hand the problem to an external solver).")

let no_simplify =
  Arg.(value & flag & info [ "no-simplify" ]
         ~doc:"Skip preprocessing (BVE, subsumption, equivalent literals, \
               XOR/Gauss, probing) before the search.")

let cmd =
  let doc = "CDCL SAT solver over DIMACS or AIGER miters" in
  Cmd.v (Cmd.info "simsweep-sat" ~doc)
    Term.(const solve_file $ path $ conflict_limit $ dump $ no_simplify)

let () = exit (Cmd.eval' cmd)
